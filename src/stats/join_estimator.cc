#include "stats/join_estimator.h"

#include <algorithm>
#include <cmath>

namespace equihist {
namespace {

Status ValidateStats(const ColumnStatistics& stats, const char* side) {
  if (stats.row_count == 0) {
    return Status::InvalidArgument(std::string(side) +
                                   " statistics have zero rows");
  }
  if (stats.distinct_estimate <= 0.0) {
    return Status::InvalidArgument(std::string(side) +
                                   " statistics have no distinct estimate");
  }
  if (stats.model == nullptr) {
    return Status::InvalidArgument(std::string(side) +
                                   " statistics have no histogram model");
  }
  return Status::OK();
}

struct LightSide {
  double mass = 0.0;      // rows not covered by heavy hitters
  double distinct = 1.0;  // distinct values among them
  double average = 0.0;   // average multiplicity
};

LightSide LightOf(const ColumnStatistics& stats) {
  double heavy_mass = 0.0;
  for (const auto& h : stats.heavy_hitters) {
    heavy_mass += static_cast<double>(h.count);
  }
  LightSide light;
  light.mass =
      std::max(static_cast<double>(stats.row_count) - heavy_mass, 0.0);
  light.distinct = std::max(
      stats.distinct_estimate - static_cast<double>(stats.heavy_hitters.size()),
      1.0);
  light.average = light.mass / light.distinct;
  return light;
}

bool InDomain(const ColumnStatistics& stats, Value v) {
  return v > stats.model->lower_fence() && v <= stats.model->upper_fence();
}

bool IsHeavy(const ColumnStatistics& stats, Value v) {
  const auto it = std::lower_bound(
      stats.heavy_hitters.begin(), stats.heavy_hitters.end(), v,
      [](const CompressedHistogram::Singleton& s, Value x) {
        return s.value < x;
      });
  return it != stats.heavy_hitters.end() && it->value == v;
}

// Fraction of `a`'s domain that overlaps `b`'s, under the uniform-spread
// assumption over (lower_fence, upper_fence].
double DomainOverlapFraction(const ColumnStatistics& a,
                             const ColumnStatistics& b) {
  const double a_lo = static_cast<double>(a.model->lower_fence());
  const double a_hi = static_cast<double>(a.model->upper_fence());
  const double b_lo = static_cast<double>(b.model->lower_fence());
  const double b_hi = static_cast<double>(b.model->upper_fence());
  const double width = a_hi - a_lo;
  if (width <= 0.0) return (b_lo < a_hi && a_hi <= b_hi) ? 1.0 : 0.0;
  const double overlap = std::min(a_hi, b_hi) - std::max(a_lo, b_lo);
  return std::clamp(overlap / width, 0.0, 1.0);
}

}  // namespace

Result<double> SystemRJoinEstimate(const ColumnStatistics& left,
                                   const ColumnStatistics& right) {
  EQUIHIST_RETURN_IF_ERROR(ValidateStats(left, "left"));
  EQUIHIST_RETURN_IF_ERROR(ValidateStats(right, "right"));
  const double d = std::max(left.distinct_estimate, right.distinct_estimate);
  return static_cast<double>(left.row_count) *
         static_cast<double>(right.row_count) / d;
}

Result<double> HistogramJoinEstimate(const ColumnStatistics& left,
                                     const ColumnStatistics& right) {
  EQUIHIST_RETURN_IF_ERROR(ValidateStats(left, "left"));
  EQUIHIST_RETURN_IF_ERROR(ValidateStats(right, "right"));

  const LightSide light_left = LightOf(left);
  const LightSide light_right = LightOf(right);

  double estimate = 0.0;
  // Heavy x heavy: exact on matched values; heavy x light: the other
  // side's average light multiplicity, if the value is in its domain.
  for (const auto& h : left.heavy_hitters) {
    if (!InDomain(right, h.value)) continue;
    if (IsHeavy(right, h.value)) {
      const auto it = std::lower_bound(
          right.heavy_hitters.begin(), right.heavy_hitters.end(), h.value,
          [](const CompressedHistogram::Singleton& s, Value x) {
            return s.value < x;
          });
      estimate += static_cast<double>(h.count) *
                  static_cast<double>(it->count);
    } else {
      estimate += static_cast<double>(h.count) * light_right.average;
    }
  }
  for (const auto& h : right.heavy_hitters) {
    if (!InDomain(left, h.value) || IsHeavy(left, h.value)) continue;
    estimate += static_cast<double>(h.count) * light_left.average;
  }

  // Light x light: System R over the light parts, scaled by the domain
  // overlap (values outside the intersection cannot match).
  const double overlap = DomainOverlapFraction(left, right);
  const double d_light = std::max(light_left.distinct, light_right.distinct);
  if (d_light > 0.0 && overlap > 0.0) {
    estimate += overlap * light_left.mass * light_right.mass / d_light;
  }
  return estimate;
}

}  // namespace equihist
