#ifndef EQUIHIST_STATS_STATISTICS_SHARD_H_
#define EQUIHIST_STATS_STATISTICS_SHARD_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>  // std::once_flag
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "baseline/gmp_incremental.h"
#include "common/annotations.h"
#include "common/metrics.h"
#include "common/mutex.h"
#include "common/result.h"
#include "common/retry.h"
#include "common/thread_pool.h"
#include "stats/column_statistics.h"
#include "stats/histogram_model.h"
#include "storage/table.h"

namespace equihist {

// FNV-1a of the column name: platform-stable (std::hash is
// implementation-defined), it seeds per-column build streams here and
// routes columns to shards in StatisticsFleet — one hash, both uses.
std::uint64_t HashColumnName(const std::string& column);

// -- Multi-column batch estimation (DESIGN.md §14) ---------------------------

// One predicate of a multi-column batch estimate: "lo < column <= hi".
// Requests may interleave columns freely — the manager groups them.
struct BatchEstimateRequest {
  std::string column;
  RangeQuery query{};
};

// The batch's answers: estimates[i] answers requests[i].
struct BatchEstimateResult {
  std::vector<double> estimates;
};

// Serving health of one column — the DESIGN.md §11 state machine.
enum class ColumnHealth : std::uint8_t {
  kFresh = 0,     // current snapshot, last build succeeded
  kStale = 1,     // serving a previous snapshot (modification threshold
                  // crossed, or the last rebuild failed and was absorbed)
  kDegraded = 2,  // no trustworthy histogram: the uniform fallback model,
                  // a quarantined blob, or nothing at all
};

struct ColumnHealthReport {
  ColumnHealth health = ColumnHealth::kDegraded;
  bool exists = false;            // column is known to the shard
  bool breaker_open = false;      // circuit breaker holding rebuilds back
  bool serving_fallback = false;  // estimates come from the uniform fallback
  bool quarantined = false;       // last installed blob failed to parse
  std::uint64_t consecutive_build_failures = 0;
  std::uint64_t total_build_failures = 0;
  // Modifications since the last build as a fraction of the snapshot's row
  // count (0 for unknown or never-built columns) — the DML-pressure signal
  // the fleet's BuildScheduler orders its queue by.
  double modified_fraction = 0.0;
  Status last_error{};  // most recent build or install failure
};

// One shard of the statistics fleet (DESIGN.md §16) — and, before the
// fleet existed, the whole StatisticsManager: a small auto-statistics
// facility in the style of SQL Server's auto-create/auto-update
// statistics (the production context of the paper). Owns per-column
// ColumnStatistics, tracks modification counters, and rebuilds stale
// statistics via the sampling pipeline on demand. StatisticsManager
// (stats/statistics_manager.h) is a thin single-shard facade over this
// class; StatisticsFleet (stats/statistics_fleet.h) hash-partitions
// columns across many of them.
//
// Tables in this library are immutable, so mutation is reported by the
// caller through RecordModifications() — the same contract a storage
// engine's DML layer would fulfil.
//
// Concurrency: the shard is safe for concurrent use from many threads.
// The read-mostly paths (GetOrBuild/EnsureFresh on warm entries, IsStale,
// Has) take a shared lock; builds serialize per column on the entry's own
// mutex (concurrent first accesses to the same column run one build, not
// two) and publish under the exclusive lock. Modification counters are
// atomics, so RecordModifications never blocks a reader. Statistics
// objects are immutable once published and handed out via shared_ptr —
// a reader holding *Shared() results keeps its snapshot alive across
// concurrent rebuilds. The raw-pointer getters keep the historical
// single-threaded contract (valid until the entry is rebuilt or dropped).
//
// Every build's RNG seed is derived from (options.seed, column name,
// per-column generation) via SplitMix, so results do not depend on the
// order in which threads reach the shard — BuildAll over a pool yields
// the same statistics as a serial loop, and a fleet of shards yields the
// same statistics as one shard holding every column.
class StatisticsShard {
 public:
  struct Options {
    std::uint64_t buckets = 200;
    double f = 0.1;            // CVB target error for sampled builds
    double gamma = 0.01;
    // Rebuild when modifications since the last build exceed this fraction
    // of the row count (SQL Server's classical 20% rule).
    double staleness_threshold = 0.2;
    // Build by sampling (CVB) rather than by full scan.
    bool prefer_sampling = true;
    // Histogram family used for builds: `default_backend` unless the
    // column has an entry in `column_backends`. Any backend registered in
    // HistogramBackendRegistry::Global() — built-in or external — works;
    // the serving path is family-agnostic.
    HistogramBackendId default_backend = HistogramBackendId::kEquiHeight;
    std::map<std::string, HistogramBackendId> column_backends{};
    std::uint64_t seed = 99;
    // Worker threads shared by every build issued through this manager
    // (block reads, sample sorting, BuildAll fan-out): 0 = one per
    // hardware thread, 1 = fully sequential (no pool is ever created);
    // larger values are clamped to the hardware thread count — builds are
    // CPU-bound, and over-subscription strictly regresses
    // (BENCH_parallel_scaling.json).
    std::uint64_t threads = 0;

    // -- Incremental maintenance (DESIGN.md §15) -----------------------------

    // Backing-sample capacity for incremental-equi-depth builds (floored
    // at `buckets`). The reservoir persists across refreshes, is
    // serialized with the histogram, and is what makes an EnsureFresh
    // refresh cost O(Δ) instead of a table re-sample.
    std::uint64_t reservoir_capacity = 4096;
    // EnsureFresh repairs incrementally while the DML applied since the
    // reservoir was seeded stays within this fraction of the live row
    // count; beyond it the accumulated drift calls for a full rebuild
    // (which reseeds the reservoir from a fresh block sample).
    double incremental_repair_budget = 0.5;
    // Counted-replacement deletes vacate reservoir slots without refilling
    // them; once the fill fraction drops below this floor the quantiles
    // are too coarse to repair against and the refresh falls back to a
    // full rebuild.
    double reservoir_min_fill = 0.25;

    // -- Fault tolerance & degraded serving (DESIGN.md §11) ------------------

    // Transient-fault retry for every page read a build issues, and the
    // CVB fault budget (blocks permanently skipped before a build fails).
    RetryPolicy retry{};
    std::uint64_t max_skipped_blocks = 64;
    // Circuit breaker: after this many consecutive failed builds of a
    // column, rebuild attempts stop for `breaker_cooldown_micros` and the
    // previous snapshot (or the fallback) keeps serving. After the
    // cooldown one attempt is let through (half-open); success closes the
    // breaker, failure re-opens it.
    std::uint64_t breaker_failure_threshold = 3;
    std::uint64_t breaker_cooldown_micros = 1'000'000;
    // Monotonic microsecond clock driving breaker cooldowns; null uses
    // steady_clock. Tests inject a manual clock so open/half-open
    // transitions are deterministic.
    std::function<std::uint64_t()> clock{};
    // When a column that never built successfully fails on a *storage
    // fault* (kUnavailable / kDataLoss / kResourceExhausted), publish the
    // metadata-only uniform fallback model instead of failing every
    // estimate. Non-fault errors (bad options, empty table) always
    // propagate, fallback or not.
    bool fallback_on_unbuilt = true;
  };

  explicit StatisticsShard(const Options& options);

  // Returns the statistics for `column`, building them on first access.
  // The pointer stays valid until the entry is rebuilt or dropped; for
  // concurrent callers prefer GetOrBuildShared.
  Result<const ColumnStatistics*> GetOrBuild(const std::string& column,
                                             const Table& table);

  // Shared-ownership variant: the returned snapshot stays valid for as
  // long as the caller holds it, across rebuilds and drops.
  Result<std::shared_ptr<const ColumnStatistics>> GetOrBuildShared(
      const std::string& column, const Table& table);

  // Reports DML activity against the column's table. Lock-free on the
  // counter; unknown columns are ignored. Count-only reports carry no
  // values, so the backing reservoir cannot absorb them: a column with
  // any pending count-only modifications always refreshes by full
  // rebuild. Prefer RecordInsert/RecordDelete when the values are known.
  void RecordModifications(const std::string& column, std::uint64_t count);

  // Value-carrying DML reports (DESIGN.md §15): one inserted / deleted
  // row. Besides the staleness counter, these maintain the column's live
  // incremental state — the backing reservoir and the split/merge
  // equi-depth histogram — so the next EnsureFresh can publish an O(Δ)
  // incremental refresh instead of rebuilding from the table. Unknown
  // columns and columns without a warm reservoir just count toward
  // staleness. Thread-safe; concurrent calls for one column serialize on
  // that column's maintenance mutex only.
  void RecordInsert(const std::string& column, Value value);
  void RecordDelete(const std::string& column, Value value);

  // True if statistics exist and the modification counter has crossed the
  // staleness threshold.
  bool IsStale(const std::string& column) const;

  // Returns fresh statistics: rebuilds if stale or missing, otherwise the
  // cached entry.
  Result<const ColumnStatistics*> EnsureFresh(const std::string& column,
                                              const Table& table);
  Result<std::shared_ptr<const ColumnStatistics>> EnsureFreshShared(
      const std::string& column, const Table& table);

  // -- Lock-free serving path ------------------------------------------------
  //
  // The hot optimizer entry points. Estimates run against the column's
  // current immutable snapshot through its HistogramModel (the equi-height
  // family serves via the compiled O(log k) read path, other backends via
  // their own estimators). Each thread keeps a small snapshot cache keyed
  // by (manager,
  // column) and validated by a per-entry publication counter; while
  // statistics are unchanged the whole call is lock-free — one relaxed
  // string-keyed cache probe plus one atomic load, no mutex, no shared_ptr
  // refcount traffic. The counter bumps on every publish and on Drop, so a
  // changed column costs one shared-lock snapshot refresh and subsequent
  // calls are lock-free again.
  //
  // Staleness is deliberately not checked here (plan-time estimation must
  // be nearly free); call EnsureFresh* when freshness matters — a rebuild
  // invalidates every thread's cache automatically via the counter.
  Result<double> EstimateRange(const std::string& column, const Table& table,
                               const RangeQuery& query);

  // Batch variant: one snapshot resolution for the whole batch, then the
  // compiled batch path; with use_pool the batch shards across the
  // manager's pool (bitwise-identical results at any thread count).
  // Requires out.size() >= queries.size().
  Status EstimateRanges(const std::string& column, const Table& table,
                        std::span<const RangeQuery> queries,
                        std::span<double> out, bool use_pool = false);

  // Multi-column batch variant: the planner hands over an entire predicate
  // list — columns freely interleaved — and gets every estimate back in
  // one call. Each distinct column's snapshot resolves once through the
  // lock-free serving cache (first access may build, exactly like
  // EstimateRange); its queries then run through the backend's batch path,
  // the vectorized serving core on equi-height. With use_pool, per-column
  // sub-batches shard across the manager's pool; results are
  // bitwise-identical at any thread count. On error (an unbuildable
  // column), estimates already computed are unspecified and the first
  // failure is returned.
  Status EstimateBatch(const Table& table,
                       std::span<const BatchEstimateRequest> requests,
                       BatchEstimateResult* result, bool use_pool = false);

  // Per-column outcome aggregation of a BuildAll sweep: every column that
  // could be built was; the rest are reported here instead of aborting the
  // sweep. A failed column may still be servable (stale snapshot or
  // fallback) — Health() tells.
  struct BuildAllResult {
    std::uint64_t attempted = 0;
    std::uint64_t succeeded = 0;  // fresh after the sweep
    // Columns whose (re)build failed, in input order, with the underlying
    // build error — including failures absorbed by degraded serving.
    std::vector<std::pair<std::string, Status>> failed;

    bool ok() const { return failed.empty(); }
    // The first failure, for Status-style call sites.
    Status status() const {
      return failed.empty() ? Status::OK() : failed.front().second;
    }
  };

  // Builds (or freshens) statistics for every named column of `table`,
  // fanning the builds out across the manager's thread pool — the
  // auto-statistics sweep a server runs after bulk load. Columns already
  // fresh are left untouched. Never gives up early: every column is
  // attempted, and per-column failures are aggregated in the result.
  BuildAllResult BuildAll(const std::vector<std::string>& columns,
                          const Table& table);

  // Installs statistics from a serialized blob (the stats/serialization.h
  // container), as a restore-from-catalog path would. A blob the v2
  // parser rejects quarantines the column: the error is recorded (see
  // Health()), the previous snapshot — if any — keeps serving, and the
  // quarantine clears on the next successful install or live build.
  Status InstallSerializedStatistics(const std::string& column,
                                     std::span<const std::uint8_t> bytes);

  // The column's serving-health report (slow path; takes the shared
  // lock). Unknown columns report exists = false, health = kDegraded.
  ColumnHealthReport Health(const std::string& column) const;

  // Drops a column's statistics (returns true if they existed).
  bool Drop(const std::string& column);

  bool Has(const std::string& column) const;
  std::size_t size() const;
  // Full from-the-table rebuilds completed (incremental refreshes are
  // counted separately below).
  std::uint64_t rebuild_count() const {
    return rebuilds_.load(std::memory_order_relaxed);
  }
  // EnsureFresh calls satisfied by an O(Δ) incremental refresh — a publish
  // from the live reservoir-backed state, with zero storage I/O.
  std::uint64_t incremental_refresh_count() const {
    return incremental_refreshes_.load(std::memory_order_relaxed);
  }

  // Cumulative I/O spent building statistics through this shard.
  IoStats total_build_cost() const;

  // The shard's lock-free metrics plane (DESIGN.md §16): serving and
  // build paths record into it with relaxed atomics only, so it stays on
  // under full traffic. Readers take relaxed snapshots.
  const metrics::MetricsPlane& metrics() const { return metrics_; }

  // Columns currently past the staleness threshold (slow path; takes the
  // shared lock and walks the entry map) — the fleet's staleness export.
  std::uint64_t stale_count() const;

 private:
  // Live incremental-maintenance state of one column (DESIGN.md §15),
  // warm only while the column serves an incremental-equi-depth snapshot.
  // Guarded by its own mutex so RecordInsert/RecordDelete never contend
  // with serving or with other columns' DML. Lock order: maintenance.mu
  // never nests with the manager's mu_ in either direction — every path
  // copies the entry shared_ptr out under mu_, releases, then takes
  // maintenance.mu (the entry node outlives the map row, so this is safe
  // against a concurrent Drop).
  struct MaintenanceState {
    // Leaf rank: holding it, NO ranked lock may be acquired — the
    // enforced half of the never-nests contract above (rank order
    // forbids the mu_-then-maintenance direction).
    Mutex mu{lockrank::kShardMaintenance};
    // The split/merge equi-depth histogram plus its backing reservoir,
    // advanced in O(1) amortized per RecordInsert/RecordDelete. Empty
    // (cold) until a successful incremental build/install warms it.
    std::optional<IncrementalEquiDepth> live GUARDED_BY(mu);
    // Count-only RecordModifications since the last warm-up. The values
    // never reached the reservoir, so any nonzero count makes the live
    // state unrepresentative and disqualifies incremental refresh.
    std::uint64_t opaque_modifications GUARDED_BY(mu) = 0;
  };

  struct Entry {
    // The manager's mu_: every non-atomic field below is guarded by it,
    // and the annotation layer checks that on each Clang build. Entries
    // never outlive their manager (the map and any in-flight build hold
    // them through shared_ptr, and both are manager-scoped).
    explicit Entry(SharedMutex* manager_mu) : mu(manager_mu) {}

    // Zero-cost capability re-binding: callers hold the manager's mu_ —
    // which IS *mu by construction — but the analysis cannot prove that
    // alias, so code about to touch guarded fields through an Entry
    // pointer calls one of these first (with the manager lock held in
    // the matching mode). Compiles to nothing.
    void AssertReaderHeld() const ASSERT_SHARED_CAPABILITY(*mu) {}
    void AssertWriterHeld() const ASSERT_CAPABILITY(*mu) {}

    SharedMutex* const mu;
    // Immutable snapshot, swapped atomically under mu; null while the
    // first build is in flight.
    std::shared_ptr<const ColumnStatistics> stats GUARDED_BY(*mu);
    // The snapshot's servable histogram model (any backend family); set
    // together with `stats` under mu, built outside any lock.
    HistogramModelPtr model GUARDED_BY(*mu);
    std::atomic<std::uint64_t> modifications_since_build{0};
    std::uint64_t generation GUARDED_BY(*mu) = 0;  // # builds completed
    // Serializes builds of this column.
    Mutex build_mu{lockrank::kShardBuild};
    // Publication counter for the lock-free serving path: bumped (under
    // mu) whenever `stats` changes and when the column is dropped. A
    // thread-cached snapshot is current iff this still equals the value
    // captured at caching time; monotone, so there is no ABA.
    std::atomic<std::uint64_t> published{0};
    // -- Degraded-serving state (DESIGN.md §11), written only in slow
    // paths — a failed rebuild never bumps `published`, so serving
    // threads keep their cached snapshot at zero cost.
    std::uint64_t consecutive_build_failures GUARDED_BY(*mu) = 0;
    std::uint64_t total_build_failures GUARDED_BY(*mu) = 0;
    // Clock micros; 0 = closed.
    std::uint64_t breaker_open_until GUARDED_BY(*mu) = 0;
    // `stats` is the uniform fallback.
    bool serving_fallback GUARDED_BY(*mu) = false;
    // Last installed blob failed to parse.
    bool quarantined GUARDED_BY(*mu) = false;
    Status last_error GUARDED_BY(*mu){};
    // Live DML-maintained state; self-locked (see MaintenanceState).
    MaintenanceState maintenance;
  };

  // One thread-local cache slot of the serving path: the shared_ptrs keep
  // the snapshot (and its Entry node) alive without per-query refcount
  // traffic, `published` is the captured publication count.
  struct CachedServing {
    std::uint64_t shard_id = 0;
    std::string column;
    std::uint64_t published = 0;
    std::shared_ptr<Entry> entry;
    std::shared_ptr<const ColumnStatistics> stats;
    HistogramModelPtr model;
  };

  Result<ColumnStatistics> Build(const std::string& column, const Table& table,
                                 std::uint64_t seed, ThreadPool* pool);
  // Finds or creates the entry node for `column`.
  std::shared_ptr<Entry> GetEntry(const std::string& column);
  // Serializes on entry->build_mu, re-checks whether a build is still
  // needed (`require_fresh` additionally rebuilds stale snapshots), then
  // builds without locks held and publishes under the exclusive lock.
  // Storage-fault build failures degrade instead of propagating — the
  // previous snapshot keeps serving (stale-while-error), or the uniform
  // fallback publishes for a never-built column; the underlying error is
  // reported through `build_error` (when non-null) and Health().
  Result<std::shared_ptr<const ColumnStatistics>> BuildAndPublish(
      const std::string& column, Entry* entry, const Table& table,
      bool require_fresh, Status* build_error = nullptr)
      EXCLUDES(mu_, entry->build_mu);
  // The degrade path of a failed build: breaker bookkeeping plus
  // stale-while-error / fallback-publish.
  Result<std::shared_ptr<const ColumnStatistics>> AbsorbBuildFailure(
      Entry* entry, const Table& table, const Status& error)
      REQUIRES(entry->build_mu) EXCLUDES(mu_);
  // The O(Δ) refresh path: when the column's maintenance state is warm,
  // representative (no opaque modifications) and within the repair budget
  // and fill floor, snapshots it, assembles fresh ColumnStatistics from
  // the reservoir alone (zero storage I/O) and publishes them — healing
  // breaker/fallback/quarantine exactly like a successful full build.
  // Returns null when incremental refresh does not apply and the caller
  // should fall through to the full build. `modifications_at_capture` is
  // subtracted from the staleness counter on publish, mirroring
  // BuildAndPublish's capture discipline.
  std::shared_ptr<const ColumnStatistics> TryRefreshIncremental(
      Entry* entry, std::uint64_t modifications_at_capture)
      REQUIRES(entry->build_mu) EXCLUDES(mu_);
  // Re-arms (or disarms) the column's maintenance state after a publish:
  // an incremental-equi-depth snapshot warms `live` from the published
  // histogram + reservoir, anything else leaves it cold. Always clears
  // opaque_modifications — the new snapshot subsumes them.
  void WarmMaintenance(Entry* entry, const ColumnStatistics& stats)
      EXCLUDES(mu_);
  // EnsureFreshShared with the underlying build error surfaced even when
  // degradation absorbed it (the BuildAll aggregation hook).
  Result<std::shared_ptr<const ColumnStatistics>> EnsureFreshInternal(
      const std::string& column, const Table& table, Status* build_error);
  bool IsStaleLocked(const Entry& entry) const REQUIRES_SHARED(*entry.mu);
  // The injectable monotonic clock (microseconds).
  std::uint64_t NowMicros() const;
  // Lazily created pool per options_.threads (null when sequential).
  ThreadPool* pool();

  // The calling thread's serving cache (shared by all managers, keyed by
  // shard_id_ so address reuse across manager lifetimes cannot alias).
  static std::vector<CachedServing>& ServingCache();
  // Cache probe for (this manager, column); null on miss.
  CachedServing* FindCachedServing(const std::string& column);
  // Slow path: resolves the column's current snapshot via the entry map
  // (building on first access), installs it in this thread's cache, and
  // returns the slot.
  Result<CachedServing*> RefreshServing(const std::string& column,
                                        const Table& table);

  const Options options_;
  const std::uint64_t shard_id_;  // process-unique, assigned at construction
  // Guards the entries_ map + snapshot/gen fields.
  mutable SharedMutex mu_{lockrank::kShardState};
  // shared_ptr nodes: an in-flight build keeps its Entry alive even if the
  // column is concurrently dropped, and Entry addresses stay stable so
  // per-entry mutexes can be held without the map lock.
  std::map<std::string, std::shared_ptr<Entry>> entries_ GUARDED_BY(mu_);
  IoStats total_build_cost_ GUARDED_BY(mu_){};
  std::atomic<std::uint64_t> rebuilds_{0};
  std::atomic<std::uint64_t> incremental_refreshes_{0};
  metrics::MetricsPlane metrics_;
  std::once_flag pool_once_;
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace equihist

#endif  // EQUIHIST_STATS_STATISTICS_SHARD_H_
