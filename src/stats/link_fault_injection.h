#ifndef EQUIHIST_STATS_LINK_FAULT_INJECTION_H_
#define EQUIHIST_STATS_LINK_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <unordered_set>
#include <vector>

namespace equihist::transport {

// Deterministic link-level fault injection for the fleet transport
// (DESIGN.md §17) — the network-side sibling of the storage layer's
// FaultInjector (storage/fault_injection.h). A LinkFaultInjector attached
// to a Transport decides, per frame crossing the link, what the simulated
// network does:
//
//   kDrop      — the frame silently vanishes. On a socket link the peer
//                never sees it and the waiting side times out against its
//                deadline; the in-process link fails fast with
//                kUnavailable (there is no wire to wait on).
//   kDelay     — the frame is delivered after a fixed injected delay,
//                capped by the caller's remaining budget.
//   kTruncate  — a strict prefix of the frame's bytes is delivered. The
//                length-prefixed envelope makes the receiver either stall
//                (short read -> deadline) or reject the malformed frame.
//   kCorrupt   — one byte of the frame is flipped in flight. The envelope
//                checksum catches it; the receiver reports kUnavailable
//                (transient wire damage, retryable) rather than
//                misinterpreting the payload.
//   kDuplicate — the frame is delivered twice. Request-id correlation in
//                the envelope makes duplicates harmless.
//   partition  — the connection as a whole is severed: every operation on
//                it fails immediately with kUnavailable.
//
// Decisions are keyed by (seed, connection, frame_index, direction) —
// never by wall clock or thread interleaving — so a given spec replays the
// identical fault sequence on every run at any thread count. Explicit
// triggers name exact (connection, frame, direction) points for non-flaky
// unit tests; per-kind probabilities layer on top for randomized chaos
// sweeps whose seed is printed for replay.
//
// The injector is safe for concurrent use from every connection thread.

enum class LinkDirection : std::uint32_t {
  kSend = 0,    // client -> server leg
  kReceive,     // server -> client leg
  kServe,       // server-side handling (delay = slow handler, drop = wedged
                // handler that never replies)
};

enum class LinkFaultKind {
  kNone = 0,
  kDrop,
  kDelay,
  kTruncate,
  kCorrupt,
  kDuplicate,
};

// Wildcard for LinkFaultTrigger::connection: matches every connection.
inline constexpr std::uint64_t kAnyConnection = ~std::uint64_t{0};

// An exact injection point. `frame_index` counts frames per (connection,
// direction), starting at 0.
struct LinkFaultTrigger {
  std::uint64_t connection = kAnyConnection;
  std::uint64_t frame_index = 0;
  LinkDirection direction = LinkDirection::kSend;
  LinkFaultKind kind = LinkFaultKind::kNone;
};

struct LinkFaultSpec {
  // Per-kind probabilities in [0, 1], evaluated per (connection,
  // frame_index, direction). A frame can satisfy several; precedence is
  // drop > truncate > corrupt > duplicate, so probabilistic specs stay
  // deterministic. Delay is orthogonal and can ride along with any of
  // them (it applies before the other fault).
  double drop_probability = 0.0;
  double delay_probability = 0.0;
  double truncate_probability = 0.0;
  double corrupt_probability = 0.0;
  double duplicate_probability = 0.0;

  // Probability that a connection id is fully partitioned (evaluated per
  // connection, not per frame).
  double partition_probability = 0.0;

  // Explicit triggers (exact tests). Order is irrelevant.
  std::vector<LinkFaultTrigger> triggers{};

  // Explicitly partitioned connection ids.
  std::vector<std::uint64_t> partitioned_connections{};

  // Injected delay for delay-selected frames.
  std::uint64_t delay_micros = 0;

  // Seed for the probabilistic decisions and the corruption masks.
  std::uint64_t seed = 0;
};

// What one frame crossing the link experiences.
struct LinkFaultPlan {
  LinkFaultKind kind = LinkFaultKind::kNone;
  std::uint64_t delay_micros = 0;  // 0 = no injected delay
};

class LinkFaultInjector {
 public:
  explicit LinkFaultInjector(LinkFaultSpec spec);

  const LinkFaultSpec& spec() const { return spec_; }

  // The fault the `frame_index`-th frame of `connection` in `direction`
  // experiences. Pure function of (spec, arguments) aside from the
  // injection counters.
  LinkFaultPlan Decide(std::uint64_t connection, std::uint64_t frame_index,
                       LinkDirection direction);

  // True if `connection` is severed entirely.
  bool Partitioned(std::uint64_t connection) const;

  // Deterministic mutators for the byte-level faults, shared by both
  // transports so a given decision mangles the frame identically
  // everywhere. Truncate keeps a strict prefix (possibly empty); corrupt
  // XORs one byte with a nonzero seed-derived mask. No-ops on empty input.
  void ApplyTruncate(std::uint64_t connection, std::uint64_t frame_index,
                     std::vector<std::uint8_t>& bytes) const;
  void ApplyCorrupt(std::uint64_t connection, std::uint64_t frame_index,
                    std::vector<std::uint8_t>& bytes) const;

  // -- Injection counters (what actually fired) ---------------------------
  std::uint64_t drops_injected() const {
    return drops_.load(std::memory_order_relaxed);
  }
  std::uint64_t delays_injected() const {
    return delays_.load(std::memory_order_relaxed);
  }
  std::uint64_t truncates_injected() const {
    return truncates_.load(std::memory_order_relaxed);
  }
  std::uint64_t corrupts_injected() const {
    return corrupts_.load(std::memory_order_relaxed);
  }
  std::uint64_t duplicates_injected() const {
    return duplicates_.load(std::memory_order_relaxed);
  }
  std::uint64_t partitions_hit() const {
    return partitions_.load(std::memory_order_relaxed);
  }
  // Sum of every fault kind that fired (partition hits included).
  std::uint64_t total_injected() const;

  // Called by transports when a partitioned connection is actually used.
  void RecordPartitionHit() {
    partitions_.fetch_add(1, std::memory_order_relaxed);
  }

 private:
  bool HashSelects(std::uint64_t connection, std::uint64_t frame_index,
                   LinkDirection direction, std::uint32_t kind_tag,
                   double p) const;
  bool TriggerMatches(std::uint64_t connection, std::uint64_t frame_index,
                      LinkDirection direction, LinkFaultKind kind) const;

  LinkFaultSpec spec_;
  std::unordered_set<std::uint64_t> partitioned_set_;

  std::atomic<std::uint64_t> drops_{0};
  std::atomic<std::uint64_t> delays_{0};
  std::atomic<std::uint64_t> truncates_{0};
  std::atomic<std::uint64_t> corrupts_{0};
  std::atomic<std::uint64_t> duplicates_{0};
  std::atomic<std::uint64_t> partitions_{0};
};

}  // namespace equihist::transport

#endif  // EQUIHIST_STATS_LINK_FAULT_INJECTION_H_
