#include "stats/fleet_wire.h"

#include <cstddef>
#include <utility>

#include "stats/wire_format.h"

namespace equihist::fleetwire {
namespace {

void PutHeader(FrameType type, std::vector<std::uint8_t>* out) {
  out->push_back(kMagic0);
  out->push_back(kMagic1);
  out->push_back(kVersion);
  out->push_back(static_cast<std::uint8_t>(type));
}

void PutString(const std::string& s, std::vector<std::uint8_t>* out) {
  wire::PutVarint(s.size(), out);
  out->insert(out->end(), s.begin(), s.end());
}

Result<std::string> ReadString(wire::Reader& reader) {
  EQUIHIST_ASSIGN_OR_RETURN(const std::uint64_t len,
                            reader.LengthPrefixedCount(1));
  std::string s;
  s.reserve(static_cast<std::size_t>(len));
  for (std::uint64_t i = 0; i < len; ++i) {
    EQUIHIST_ASSIGN_OR_RETURN(const std::uint8_t byte, reader.Byte());
    s.push_back(static_cast<char>(byte));
  }
  return s;
}

// Consumes and validates the 4-byte header; `expected` pins the type.
Status ReadHeader(wire::Reader& reader, FrameType expected) {
  EQUIHIST_ASSIGN_OR_RETURN(const std::uint8_t m0, reader.Byte());
  EQUIHIST_ASSIGN_OR_RETURN(const std::uint8_t m1, reader.Byte());
  if (m0 != kMagic0 || m1 != kMagic1) {
    return Status::InvalidArgument("bad fleet frame magic");
  }
  EQUIHIST_ASSIGN_OR_RETURN(const std::uint8_t version, reader.Byte());
  if (version != kVersion) {
    return Status::InvalidArgument("unsupported fleet frame version");
  }
  EQUIHIST_ASSIGN_OR_RETURN(const std::uint8_t type, reader.Byte());
  if (type != static_cast<std::uint8_t>(expected)) {
    return Status::InvalidArgument("unexpected fleet frame type");
  }
  return Status::OK();
}

Status CheckFullyConsumed(const wire::Reader& reader) {
  if (reader.remaining() != 0) {
    return Status::InvalidArgument("trailing bytes after fleet frame");
  }
  return Status::OK();
}

}  // namespace

std::vector<std::uint8_t> Encode(const EstimateBatchRequestFrame& frame) {
  std::vector<std::uint8_t> out;
  PutHeader(FrameType::kEstimateBatchRequest, &out);
  wire::PutVarint(frame.requests.size(), &out);
  for (const BatchEstimateRequest& request : frame.requests) {
    PutString(request.column, &out);
    wire::PutSigned(request.query.lo, &out);
    wire::PutSigned(request.query.hi, &out);
  }
  return out;
}

std::vector<std::uint8_t> Encode(const EstimateBatchResponseFrame& frame) {
  std::vector<std::uint8_t> out;
  PutHeader(FrameType::kEstimateBatchResponse, &out);
  wire::PutVarint(frame.estimates.size(), &out);
  for (const double estimate : frame.estimates) {
    wire::PutF64(estimate, &out);
  }
  return out;
}

std::vector<std::uint8_t> Encode(const BuildControlRequestFrame& frame) {
  std::vector<std::uint8_t> out;
  PutHeader(FrameType::kBuildControlRequest, &out);
  out.push_back(static_cast<std::uint8_t>(frame.op));
  PutString(frame.column, &out);
  if (frame.op == BuildOp::kRecordModifications) {
    wire::PutVarint(frame.count, &out);
  }
  return out;
}

std::vector<std::uint8_t> Encode(const BuildControlResponseFrame& frame) {
  std::vector<std::uint8_t> out;
  PutHeader(FrameType::kBuildControlResponse, &out);
  out.push_back(static_cast<std::uint8_t>(frame.code));
  PutString(frame.message, &out);
  return out;
}

std::vector<std::uint8_t> EncodeMetricsRequest() {
  std::vector<std::uint8_t> out;
  PutHeader(FrameType::kMetricsRequest, &out);
  return out;
}

std::vector<std::uint8_t> Encode(const MetricsResponseFrame& frame) {
  std::vector<std::uint8_t> out;
  PutHeader(FrameType::kMetricsResponse, &out);
  PutString(frame.json, &out);
  return out;
}

std::vector<std::uint8_t> Encode(const RejectionFrame& frame) {
  std::vector<std::uint8_t> out;
  PutHeader(FrameType::kRejection, &out);
  out.push_back(static_cast<std::uint8_t>(frame.code));
  PutString(frame.message, &out);
  return out;
}

Result<FrameType> PeekType(std::span<const std::uint8_t> bytes) {
  wire::Reader reader(bytes);
  EQUIHIST_ASSIGN_OR_RETURN(const std::uint8_t m0, reader.Byte());
  EQUIHIST_ASSIGN_OR_RETURN(const std::uint8_t m1, reader.Byte());
  if (m0 != kMagic0 || m1 != kMagic1) {
    return Status::InvalidArgument("bad fleet frame magic");
  }
  EQUIHIST_ASSIGN_OR_RETURN(const std::uint8_t version, reader.Byte());
  if (version != kVersion) {
    return Status::InvalidArgument("unsupported fleet frame version");
  }
  EQUIHIST_ASSIGN_OR_RETURN(const std::uint8_t type, reader.Byte());
  if (type < static_cast<std::uint8_t>(FrameType::kEstimateBatchRequest) ||
      type > static_cast<std::uint8_t>(FrameType::kRejection)) {
    return Status::InvalidArgument("unknown fleet frame type");
  }
  return static_cast<FrameType>(type);
}

Result<EstimateBatchRequestFrame> DecodeEstimateBatchRequest(
    std::span<const std::uint8_t> bytes) {
  wire::Reader reader(bytes);
  EQUIHIST_RETURN_IF_ERROR(
      ReadHeader(reader, FrameType::kEstimateBatchRequest));
  // Each request is at least 3 bytes (length prefix + two varints).
  EQUIHIST_ASSIGN_OR_RETURN(const std::uint64_t count,
                            reader.LengthPrefixedCount(3));
  EstimateBatchRequestFrame frame;
  frame.requests.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    BatchEstimateRequest request;
    EQUIHIST_ASSIGN_OR_RETURN(request.column, ReadString(reader));
    EQUIHIST_ASSIGN_OR_RETURN(request.query.lo, reader.Signed());
    EQUIHIST_ASSIGN_OR_RETURN(request.query.hi, reader.Signed());
    if (request.query.lo > request.query.hi) {
      return Status::InvalidArgument("fleet frame range has lo > hi");
    }
    frame.requests.push_back(std::move(request));
  }
  EQUIHIST_RETURN_IF_ERROR(CheckFullyConsumed(reader));
  return frame;
}

Result<EstimateBatchResponseFrame> DecodeEstimateBatchResponse(
    std::span<const std::uint8_t> bytes) {
  wire::Reader reader(bytes);
  EQUIHIST_RETURN_IF_ERROR(
      ReadHeader(reader, FrameType::kEstimateBatchResponse));
  EQUIHIST_ASSIGN_OR_RETURN(const std::uint64_t count,
                            reader.LengthPrefixedCount(8));
  EstimateBatchResponseFrame frame;
  frame.estimates.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    EQUIHIST_ASSIGN_OR_RETURN(const double estimate, reader.F64());
    frame.estimates.push_back(estimate);
  }
  EQUIHIST_RETURN_IF_ERROR(CheckFullyConsumed(reader));
  return frame;
}

Result<BuildControlRequestFrame> DecodeBuildControlRequest(
    std::span<const std::uint8_t> bytes) {
  wire::Reader reader(bytes);
  EQUIHIST_RETURN_IF_ERROR(
      ReadHeader(reader, FrameType::kBuildControlRequest));
  BuildControlRequestFrame frame;
  EQUIHIST_ASSIGN_OR_RETURN(const std::uint8_t op, reader.Byte());
  if (op > static_cast<std::uint8_t>(BuildOp::kRecordModifications)) {
    return Status::InvalidArgument("unknown fleet build op");
  }
  frame.op = static_cast<BuildOp>(op);
  EQUIHIST_ASSIGN_OR_RETURN(frame.column, ReadString(reader));
  if (frame.column.empty()) {
    return Status::InvalidArgument("fleet build op names no column");
  }
  if (frame.op == BuildOp::kRecordModifications) {
    EQUIHIST_ASSIGN_OR_RETURN(frame.count, reader.Varint());
  }
  EQUIHIST_RETURN_IF_ERROR(CheckFullyConsumed(reader));
  return frame;
}

Result<BuildControlResponseFrame> DecodeBuildControlResponse(
    std::span<const std::uint8_t> bytes) {
  wire::Reader reader(bytes);
  EQUIHIST_RETURN_IF_ERROR(
      ReadHeader(reader, FrameType::kBuildControlResponse));
  BuildControlResponseFrame frame;
  EQUIHIST_ASSIGN_OR_RETURN(const std::uint8_t code, reader.Byte());
  if (code > static_cast<std::uint8_t>(StatusCode::kDeadlineExceeded)) {
    return Status::InvalidArgument("unknown status code in fleet frame");
  }
  frame.code = static_cast<StatusCode>(code);
  EQUIHIST_ASSIGN_OR_RETURN(frame.message, ReadString(reader));
  EQUIHIST_RETURN_IF_ERROR(CheckFullyConsumed(reader));
  return frame;
}

Status DecodeMetricsRequest(std::span<const std::uint8_t> bytes) {
  wire::Reader reader(bytes);
  EQUIHIST_RETURN_IF_ERROR(ReadHeader(reader, FrameType::kMetricsRequest));
  return CheckFullyConsumed(reader);
}

Result<MetricsResponseFrame> DecodeMetricsResponse(
    std::span<const std::uint8_t> bytes) {
  wire::Reader reader(bytes);
  EQUIHIST_RETURN_IF_ERROR(ReadHeader(reader, FrameType::kMetricsResponse));
  MetricsResponseFrame frame;
  EQUIHIST_ASSIGN_OR_RETURN(frame.json, ReadString(reader));
  EQUIHIST_RETURN_IF_ERROR(CheckFullyConsumed(reader));
  return frame;
}

Result<RejectionFrame> DecodeRejection(std::span<const std::uint8_t> bytes) {
  wire::Reader reader(bytes);
  EQUIHIST_RETURN_IF_ERROR(ReadHeader(reader, FrameType::kRejection));
  RejectionFrame frame;
  EQUIHIST_ASSIGN_OR_RETURN(const std::uint8_t code, reader.Byte());
  if (code == static_cast<std::uint8_t>(StatusCode::kOk) ||
      code > static_cast<std::uint8_t>(StatusCode::kDeadlineExceeded)) {
    return Status::InvalidArgument("rejection frame carries no valid error");
  }
  frame.code = static_cast<StatusCode>(code);
  EQUIHIST_ASSIGN_OR_RETURN(frame.message, ReadString(reader));
  EQUIHIST_RETURN_IF_ERROR(CheckFullyConsumed(reader));
  return frame;
}

}  // namespace equihist::fleetwire
