#ifndef EQUIHIST_STATS_STATISTICS_FLEET_H_
#define EQUIHIST_STATS_STATISTICS_FLEET_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/annotations.h"
#include "common/metrics.h"
#include "common/mutex.h"
#include "common/result.h"
#include "stats/build_scheduler.h"
#include "stats/statistics_shard.h"
#include "storage/table.h"

namespace equihist {

// Group-commit front-end for one shard's EstimateBatch (DESIGN.md §16).
// Concurrent submitters enqueue; the first becomes the leader, drains the
// queue in waves, and serves each wave as ONE combined EstimateBatch call
// against the shard — later arrivals piggyback on the wave in flight.
// Under contention this turns k lock-free-cache resolutions + k backend
// dispatches into one of each; under no contention it degenerates to a
// direct call with one uncontended lock round-trip.
//
// Correctness: every estimate in a batch is computed independently
// (estimates[i] depends only on requests[i] and the column snapshot), so
// combining batches and scattering the answers back is bitwise-neutral.
class BatchCoalescer {
 public:
  BatchCoalescer() = default;
  BatchCoalescer(const BatchCoalescer&) = delete;
  BatchCoalescer& operator=(const BatchCoalescer&) = delete;

  // Serves `requests` against `shard` (all rows reference `table`),
  // writing requests.size() answers to `out`. Blocks until served —
  // either by this thread as the leader or by a concurrent leader's wave —
  // or, when `wait_micros` > 0, until that bound expires, in which case
  // the submission is abandoned and kDeadlineExceeded returned: a wedged
  // leader (e.g. a backend stuck in I/O) can never pin follower threads
  // forever. `wait_micros` == 0 waits unboundedly. The bound applies to
  // followers only; the leader runs the shard call on its own thread and
  // is bounded by that call, not by this queue.
  // `metrics` (optional) receives the coalescing counters.
  Status Submit(StatisticsShard& shard, const Table& table,
                std::span<const BatchEstimateRequest> requests, double* out,
                metrics::MetricsPlane* metrics = nullptr,
                std::uint64_t wait_micros = 0) EXCLUDES(mu_);

 private:
  // Owned by shared_ptr so an abandoning follower can return while the
  // leader still serves (or later completes) its wave: the leader's copy
  // keeps the requests and answer storage alive, and the dead follower's
  // stack is never touched.
  struct Pending {
    const Table* table = nullptr;
    std::vector<BatchEstimateRequest> requests;
    std::vector<double> answers;
    Status status;
    bool done = false;
  };

  // Serves one drained wave (leader only, no lock held): one combined
  // EstimateBatch per distinct table in the wave, answers scattered back.
  static void ServeWave(StatisticsShard& shard,
                        const std::vector<std::shared_ptr<Pending>>& wave,
                        metrics::MetricsPlane* metrics);

  Mutex mu_{lockrank::kCoalescer};
  CondVar cv_;
  std::vector<std::shared_ptr<Pending>> queue_ GUARDED_BY(mu_);
  bool leader_active_ GUARDED_BY(mu_) = false;
};

// A fleet of StatisticsShards behind one facade (DESIGN.md §16): columns
// hash-partition across `shards` independent StatisticsShard instances
// (FNV-1a of the column name, the hash the shard itself uses for build
// seeds), so column-level mutual exclusion, serving caches, and DML
// counters shard too — writers to different columns on different shards
// never touch the same mutex.
//
// On top of the shards the fleet adds:
//   - a batched front-end: EstimateBatch partitions a mixed-column batch
//     across shards with a counting sort and (optionally) coalesces
//     concurrent callers per shard through BatchCoalescer;
//   - an async BuildScheduler with priority admission (degraded > stale >
//     fresh, then DML pressure) on the PR-1 ThreadPool;
//   - the fleetwire frame protocol (ServeFrame) for estimate and
//     build-control messages;
//   - a lock-free MetricsPlane per shard plus a fleet-level plane, all
//     exported by MetricsJson().
//
// Determinism: build seeds depend only on (options.shard.seed, column,
// generation) — never on the shard index — so a fleet of any size serves
// estimates bitwise-identical to a single StatisticsManager with the same
// options (pinned by FleetMatchesSingleManagerBitwise in the tests).
class StatisticsFleet {
 public:
  struct Options {
    // Number of independent shards; values < 1 are treated as 1.
    std::uint64_t shards = 4;
    // Applied to every shard verbatim (the seed is shared by design — see
    // the determinism note above).
    StatisticsShard::Options shard{};
    BuildScheduler::Options scheduler{};
    // Group-commit batching of concurrent EstimateBatch callers. Off, the
    // fleet still partitions batches across shards but each caller calls
    // the shard directly.
    bool coalesce = true;
    // Upper bound a coalescer follower waits on a concurrent leader's
    // wave before abandoning with kDeadlineExceeded (0 = unbounded). The
    // default is far above any healthy serve time; it exists so a wedged
    // leader degrades into typed errors instead of a pile of stuck
    // threads.
    std::uint64_t coalesce_wait_micros = 60'000'000;
  };

  explicit StatisticsFleet(const Options& options);

  std::size_t shard_count() const { return shards_.size(); }
  // The shard that owns `column` (stable for the fleet's lifetime).
  std::size_t ShardIndex(const std::string& column) const;
  StatisticsShard& shard(std::size_t index) { return *shards_[index]; }
  const StatisticsShard& shard(std::size_t index) const {
    return *shards_[index];
  }

  // -- Serving (routes to the owning shard) --------------------------------

  Result<double> EstimateRange(const std::string& column, const Table& table,
                               const RangeQuery& query);

  // Cross-shard batch: requests are counting-sorted by owning shard,
  // gathered into per-shard contiguous sub-batches, served (through the
  // coalescer when enabled), and scattered back into request order.
  // Same contract as StatisticsShard::EstimateBatch, including the
  // first-error behavior.
  Status EstimateBatch(const Table& table,
                       std::span<const BatchEstimateRequest> requests,
                       BatchEstimateResult* result);

  // -- Builds & DML (route to the owning shard) ----------------------------

  Result<const ColumnStatistics*> EnsureFresh(const std::string& column,
                                              const Table& table);
  // Partitions `columns` across shards and aggregates the per-shard
  // sweeps; `failed` is reported in input order.
  StatisticsShard::BuildAllResult BuildAll(
      const std::vector<std::string>& columns, const Table& table);
  void RecordModifications(const std::string& column, std::uint64_t count);
  void RecordInsert(const std::string& column, Value value);
  void RecordDelete(const std::string& column, Value value);
  ColumnHealthReport Health(const std::string& column) const;
  bool Drop(const std::string& column);
  bool Has(const std::string& column) const;
  std::size_t size() const;

  // -- Async builds --------------------------------------------------------

  // Queues an async freshness build for `column` with the scheduler,
  // classed by the column's current health and DML pressure. `table_name`
  // is the scheduler's fairness domain; `table` must outlive the build
  // (i.e. stay alive until DrainBuilds() or destruction).
  void ScheduleBuild(const std::string& table_name, const std::string& column,
                     const Table& table);
  void DrainBuilds() { scheduler_->Drain(); }
  BuildScheduler& scheduler() { return *scheduler_; }

  // -- Wire protocol -------------------------------------------------------

  // Serves one fleetwire request frame against `table` and returns the
  // encoded response frame. Estimate errors and malformed frames surface
  // as the returned Status; build-control outcomes travel *inside* the
  // response frame. Response-typed input frames are rejected.
  Result<std::vector<std::uint8_t>> ServeFrame(
      std::span<const std::uint8_t> bytes, const Table& table);

  // -- Observability -------------------------------------------------------

  const metrics::MetricsPlane& fleet_metrics() const { return metrics_; }
  // {"fleet": <fleet plane>, "shards": [{"size", "stale", "metrics"}...]}
  std::string MetricsJson() const;

 private:
  Status EstimateBatchPartitioned(
      const Table& table, std::span<const BatchEstimateRequest> requests,
      BatchEstimateResult* result);

  const Options options_;
  metrics::MetricsPlane metrics_;  // fleet-level: coalescing, wire, scheduler
  std::vector<std::unique_ptr<StatisticsShard>> shards_;
  std::vector<std::unique_ptr<BatchCoalescer>> coalescers_;
  std::unique_ptr<BuildScheduler> scheduler_;
};

}  // namespace equihist

#endif  // EQUIHIST_STATS_STATISTICS_FLEET_H_
