#include "stats/statistics_fleet.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <memory>
#include <utility>

#include "stats/fleet_wire.h"

namespace equihist {

// -- BatchCoalescer ----------------------------------------------------------

void BatchCoalescer::ServeWave(
    StatisticsShard& shard, const std::vector<std::shared_ptr<Pending>>& wave,
    metrics::MetricsPlane* metrics) {
  // One combined shard call per distinct table in the wave (waves almost
  // always reference a single table; the map keeps mixed waves correct).
  std::map<const Table*, std::vector<Pending*>> by_table;
  for (const auto& pending : wave) {
    by_table[pending->table].push_back(pending.get());
  }
  for (auto& [table, group] : by_table) {
    std::vector<BatchEstimateRequest> combined;
    std::size_t total = 0;
    for (const Pending* pending : group) total += pending->requests.size();
    combined.reserve(total);
    for (const Pending* pending : group) {
      combined.insert(combined.end(), pending->requests.begin(),
                      pending->requests.end());
    }
    BatchEstimateResult result;
    const Status status = shard.EstimateBatch(*table, combined, &result);
    if (status.ok()) {
      std::size_t offset = 0;
      for (Pending* pending : group) {
        std::copy_n(
            result.estimates.begin() + static_cast<std::ptrdiff_t>(offset),
            pending->requests.size(), pending->answers.begin());
        pending->status = Status::OK();
        offset += pending->requests.size();
      }
    } else {
      for (Pending* pending : group) pending->status = status;
    }
    if (metrics != nullptr && group.size() > 1) {
      metrics->Increment(metrics::Counter::kCoalescedBatches);
      metrics->Increment(metrics::Counter::kCoalescedRequests, group.size());
      metrics->Observe(metrics::Hist::kCoalescedBatchSize, total);
    }
  }
}

Status BatchCoalescer::Submit(StatisticsShard& shard, const Table& table,
                              std::span<const BatchEstimateRequest> requests,
                              double* out, metrics::MetricsPlane* metrics,
                              std::uint64_t wait_micros) {
  auto self = std::make_shared<Pending>();
  self->table = &table;
  self->requests.assign(requests.begin(), requests.end());
  self->answers.assign(requests.size(), 0.0);
  mu_.Lock();
  queue_.push_back(self);
  if (leader_active_) {
    // A leader is serving waves; it will pick this up and flip done.
    bool served = true;
    if (wait_micros == 0) {
      cv_.Wait(mu_, [&self]() { return self->done; });
    } else {
      served = cv_.WaitFor(mu_, std::chrono::microseconds(wait_micros),
                           [&self]() { return self->done; });
    }
    if (!served) {
      // Abandon. If the leader has not dequeued us yet, withdraw so it
      // never will; if it has, our shared_ptr copy dies here and the
      // leader's copy keeps the storage alive — it completes the wave
      // into memory nobody reads. Either way the caller gets a typed
      // timeout instead of an unbounded block.
      auto it = std::find(queue_.begin(), queue_.end(), self);
      if (it != queue_.end()) queue_.erase(it);
      mu_.Unlock();
      return Status::DeadlineExceeded(
          "coalesced batch abandoned: leader did not complete in time");
    }
    Status status = std::move(self->status);
    mu_.Unlock();
    if (status.ok()) {
      std::copy(self->answers.begin(), self->answers.end(), out);
    }
    return status;
  }
  leader_active_ = true;
  while (!queue_.empty()) {
    std::vector<std::shared_ptr<Pending>> wave;
    wave.swap(queue_);
    mu_.Unlock();
    // Only the leader touches a pending between dequeue and done, so the
    // wave is served lock-free; submitters that arrive meanwhile queue up
    // for the next wave.
    ServeWave(shard, wave, metrics);
    mu_.Lock();
    for (const auto& pending : wave) pending->done = true;
    cv_.NotifyAll();
  }
  leader_active_ = false;
  Status status = std::move(self->status);
  mu_.Unlock();
  if (status.ok()) {
    std::copy(self->answers.begin(), self->answers.end(), out);
  }
  return status;
}

// -- StatisticsFleet ---------------------------------------------------------

StatisticsFleet::StatisticsFleet(const Options& options)
    : options_(options) {
  const std::uint64_t n = std::max<std::uint64_t>(options.shards, 1);
  shards_.reserve(n);
  coalescers_.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<StatisticsShard>(options.shard));
    coalescers_.push_back(std::make_unique<BatchCoalescer>());
  }
  scheduler_ = std::make_unique<BuildScheduler>(options.scheduler, &metrics_);
}

std::size_t StatisticsFleet::ShardIndex(const std::string& column) const {
  // Single-shard fleets skip the hash entirely: the facade configuration
  // must serve at the manager's exact ns/query.
  if (shards_.size() == 1) return 0;
  return static_cast<std::size_t>(HashColumnName(column) % shards_.size());
}

Result<double> StatisticsFleet::EstimateRange(const std::string& column,
                                              const Table& table,
                                              const RangeQuery& query) {
  // Scalar estimates skip the coalescer: the serving path is lock-free
  // already, and plan-time point lookups must not pay a queue round-trip.
  return shards_[ShardIndex(column)]->EstimateRange(column, table, query);
}

Status StatisticsFleet::EstimateBatch(
    const Table& table, std::span<const BatchEstimateRequest> requests,
    BatchEstimateResult* result) {
  if (result == nullptr) {
    return Status::InvalidArgument("EstimateBatch requires a result");
  }
  metrics_.Increment(metrics::Counter::kEstimateBatches);
  metrics_.Increment(metrics::Counter::kEstimateQueries, requests.size());
  metrics_.Observe(metrics::Hist::kEstimateBatchSize, requests.size());
  result->estimates.assign(requests.size(), 0.0);
  if (requests.empty()) return Status::OK();
  if (shards_.size() == 1 && !options_.coalesce) {
    return shards_[0]->EstimateBatch(table, requests, result);
  }
  return EstimateBatchPartitioned(table, requests, result);
}

Status StatisticsFleet::EstimateBatchPartitioned(
    const Table& table, std::span<const BatchEstimateRequest> requests,
    BatchEstimateResult* result) {
  const std::size_t n = requests.size();
  const std::size_t num_shards = shards_.size();
  // Counting sort by owning shard: count, prefix-sum into offsets, gather
  // — the same grouping idiom the shard applies per column, one level up.
  std::vector<std::size_t> shard_of(n);
  std::vector<std::size_t> counts(num_shards, 0);
  for (std::size_t i = 0; i < n; ++i) {
    shard_of[i] = ShardIndex(requests[i].column);
    ++counts[shard_of[i]];
  }
  std::vector<std::size_t> offsets(num_shards + 1, 0);
  for (std::size_t s = 0; s < num_shards; ++s) {
    offsets[s + 1] = offsets[s] + counts[s];
  }
  std::vector<BatchEstimateRequest> gathered(n);
  std::vector<std::size_t> original_index(n);
  std::vector<std::size_t> cursor(offsets.begin(), offsets.end() - 1);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t slot = cursor[shard_of[i]]++;
    gathered[slot] = requests[i];
    original_index[slot] = i;
  }
  std::vector<double> answers(n, 0.0);
  for (std::size_t s = 0; s < num_shards; ++s) {
    const std::size_t begin = offsets[s];
    const std::size_t count = offsets[s + 1] - begin;
    if (count == 0) continue;
    const std::span<const BatchEstimateRequest> sub(&gathered[begin], count);
    if (options_.coalesce) {
      EQUIHIST_RETURN_IF_ERROR(
          coalescers_[s]->Submit(*shards_[s], table, sub, &answers[begin],
                                 &metrics_, options_.coalesce_wait_micros));
    } else {
      BatchEstimateResult sub_result;
      EQUIHIST_RETURN_IF_ERROR(
          shards_[s]->EstimateBatch(table, sub, &sub_result));
      std::copy(sub_result.estimates.begin(), sub_result.estimates.end(),
                answers.begin() + static_cast<std::ptrdiff_t>(begin));
    }
  }
  for (std::size_t slot = 0; slot < n; ++slot) {
    result->estimates[original_index[slot]] = answers[slot];
  }
  return Status::OK();
}

Result<const ColumnStatistics*> StatisticsFleet::EnsureFresh(
    const std::string& column, const Table& table) {
  return shards_[ShardIndex(column)]->EnsureFresh(column, table);
}

StatisticsShard::BuildAllResult StatisticsFleet::BuildAll(
    const std::vector<std::string>& columns, const Table& table) {
  std::vector<std::vector<std::string>> per_shard(shards_.size());
  for (const std::string& column : columns) {
    per_shard[ShardIndex(column)].push_back(column);
  }
  StatisticsShard::BuildAllResult aggregate;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (per_shard[s].empty()) continue;
    StatisticsShard::BuildAllResult shard_result =
        shards_[s]->BuildAll(per_shard[s], table);
    aggregate.attempted += shard_result.attempted;
    aggregate.succeeded += shard_result.succeeded;
    for (auto& failure : shard_result.failed) {
      aggregate.failed.push_back(std::move(failure));
    }
  }
  // Per-shard sweeps report in shard order; restore the input-order
  // contract of StatisticsShard::BuildAll.
  std::map<std::string, std::size_t> input_order;
  for (std::size_t i = 0; i < columns.size(); ++i) {
    input_order.emplace(columns[i], i);
  }
  std::stable_sort(aggregate.failed.begin(), aggregate.failed.end(),
                   [&input_order](const auto& a, const auto& b) {
                     return input_order[a.first] < input_order[b.first];
                   });
  return aggregate;
}

void StatisticsFleet::RecordModifications(const std::string& column,
                                          std::uint64_t count) {
  shards_[ShardIndex(column)]->RecordModifications(column, count);
}

void StatisticsFleet::RecordInsert(const std::string& column, Value value) {
  shards_[ShardIndex(column)]->RecordInsert(column, value);
}

void StatisticsFleet::RecordDelete(const std::string& column, Value value) {
  shards_[ShardIndex(column)]->RecordDelete(column, value);
}

ColumnHealthReport StatisticsFleet::Health(const std::string& column) const {
  return shards_[ShardIndex(column)]->Health(column);
}

bool StatisticsFleet::Drop(const std::string& column) {
  return shards_[ShardIndex(column)]->Drop(column);
}

bool StatisticsFleet::Has(const std::string& column) const {
  return shards_[ShardIndex(column)]->Has(column);
}

std::size_t StatisticsFleet::size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) total += shard->size();
  return total;
}

void StatisticsFleet::ScheduleBuild(const std::string& table_name,
                                    const std::string& column,
                                    const Table& table) {
  StatisticsShard* shard = shards_[ShardIndex(column)].get();
  const ColumnHealthReport report = shard->Health(column);
  scheduler_->Enqueue(BuildScheduler::Request{
      table_name, column, report.health, report.modified_fraction,
      [shard, column, table_ptr = &table]() {
        return shard->EnsureFresh(column, *table_ptr).status();
      }});
}

Result<std::vector<std::uint8_t>> StatisticsFleet::ServeFrame(
    std::span<const std::uint8_t> bytes, const Table& table) {
  Result<std::vector<std::uint8_t>> response = [&]()
      -> Result<std::vector<std::uint8_t>> {
    EQUIHIST_ASSIGN_OR_RETURN(const fleetwire::FrameType type,
                              fleetwire::PeekType(bytes));
    switch (type) {
      case fleetwire::FrameType::kEstimateBatchRequest: {
        EQUIHIST_ASSIGN_OR_RETURN(
            const fleetwire::EstimateBatchRequestFrame request,
            fleetwire::DecodeEstimateBatchRequest(bytes));
        fleetwire::EstimateBatchResponseFrame reply;
        BatchEstimateResult result;
        EQUIHIST_RETURN_IF_ERROR(
            EstimateBatch(table, request.requests, &result));
        reply.estimates = std::move(result.estimates);
        return fleetwire::Encode(reply);
      }
      case fleetwire::FrameType::kBuildControlRequest: {
        EQUIHIST_ASSIGN_OR_RETURN(
            const fleetwire::BuildControlRequestFrame request,
            fleetwire::DecodeBuildControlRequest(bytes));
        Status outcome = Status::OK();
        switch (request.op) {
          case fleetwire::BuildOp::kEnsureFresh:
            outcome = EnsureFresh(request.column, table).status();
            break;
          case fleetwire::BuildOp::kDrop:
            if (!Drop(request.column)) {
              outcome = Status::NotFound("no statistics for column");
            }
            break;
          case fleetwire::BuildOp::kRecordModifications:
            RecordModifications(request.column, request.count);
            break;
        }
        // Build outcomes ride inside the response; only frame-level
        // failures surface as the outer Status.
        return fleetwire::Encode(fleetwire::BuildControlResponseFrame{
            outcome.code(), outcome.message()});
      }
      case fleetwire::FrameType::kMetricsRequest: {
        EQUIHIST_RETURN_IF_ERROR(fleetwire::DecodeMetricsRequest(bytes));
        return fleetwire::Encode(
            fleetwire::MetricsResponseFrame{MetricsJson()});
      }
      case fleetwire::FrameType::kEstimateBatchResponse:
      case fleetwire::FrameType::kBuildControlResponse:
      case fleetwire::FrameType::kMetricsResponse:
      case fleetwire::FrameType::kRejection:
        return Status::InvalidArgument(
            "response frames cannot be served");
    }
    return Status::InvalidArgument("unknown fleet frame type");
  }();
  metrics_.Increment(response.ok() ? metrics::Counter::kWireFramesServed
                                   : metrics::Counter::kWireFrameErrors);
  return response;
}

std::string StatisticsFleet::MetricsJson() const {
  std::string out = "{\"fleet\":";
  out += metrics_.ToJson();
  out += ",\"shards\":[";
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (s != 0) out += ',';
    out += "{\"size\":";
    out += std::to_string(shards_[s]->size());
    out += ",\"stale\":";
    out += std::to_string(shards_[s]->stale_count());
    out += ",\"metrics\":";
    out += shards_[s]->metrics().ToJson();
    out += '}';
  }
  out += "]}";
  return out;
}

}  // namespace equihist
