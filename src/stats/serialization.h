#ifndef EQUIHIST_STATS_SERIALIZATION_H_
#define EQUIHIST_STATS_SERIALIZATION_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/result.h"
#include "core/histogram.h"
#include "stats/column_statistics.h"
#include "stats/histogram_model.h"

namespace equihist {

// Binary (de)serialization for persisted statistics. SQL Server stores one
// histogram per disk page — "for an integer column this translates to 600
// bins" (Section 7.1, implementation note 5). The format here is a compact
// delta/varint encoding under the same budget: a 600-step histogram over a
// 64-bit integer column fits an 8 KB page with room to spare (tested).
//
// Container (version 2, little-endian varints):
//   u32 magic 'EQHS' | u8 version | u8 backend id | backend payload
// The backend id is a HistogramBackendId; the payload is owned end to end
// by that backend's registered codec (HistogramModel::SerializePayload /
// HistogramBackendRegistry::Backend::deserialize_payload), so new
// histogram families round-trip with no change to this framing. The
// equi-height payload is: varint k | varint n | zigzag lower_fence |
// zigzag upper_fence | k-1 zigzag separator deltas | k varint counts.
//
// Version 1 blobs (no backend-id byte; the payload is always equi-height)
// are still readable: the reader treats `version == 1` as an implicit
// equi-height tag.
//
// Statistics append after the container: f64 density | f64 distinct |
//   varint heavy-hitter count | per hitter: zigzag value delta, varint
//   count | u8 flags | varint sample_size | varint row_count.
//
// Deserialization validates everything — length prefixes against the
// remaining buffer before any allocation, count sums against the claimed
// total (with overflow checks), and the structural invariants of the
// reassembled histogram — so corrupted bytes yield Status, never UB. The
// whole-buffer entry points (any Deserialize* called with no `consumed`
// out-parameter) additionally reject trailing garbage.

// Appends the container encoding of `model` to `out`.
void SerializeHistogramModel(const HistogramModel& model,
                             std::vector<std::uint8_t>* out);

// Parses any registered backend's histogram from the front of `bytes`. On
// success advances `*consumed` by the bytes read; when `consumed` is null
// the model must span the whole buffer.
Result<HistogramModelPtr> DeserializeHistogramModel(
    std::span<const std::uint8_t> bytes, std::size_t* consumed = nullptr);

// Equi-height convenience wrappers over the container (the historical
// API). Deserialization accepts v1 blobs and v2 equi-height-family blobs;
// other families fail with InvalidArgument.
void SerializeHistogram(const Histogram& histogram,
                        std::vector<std::uint8_t>* out);
Result<Histogram> DeserializeHistogram(std::span<const std::uint8_t> bytes,
                                       std::size_t* consumed = nullptr);

// Whole-statistics round trip. Serialization requires stats.model.
void SerializeColumnStatistics(const ColumnStatistics& stats,
                               std::vector<std::uint8_t>* out);
Result<ColumnStatistics> DeserializeColumnStatistics(
    std::span<const std::uint8_t> bytes);

// True if the histogram's encoding fits within `page_size_bytes` — the SQL
// Server one-page budget check.
bool HistogramFitsInPage(const Histogram& histogram,
                         std::uint32_t page_size_bytes);

// The largest k such that an equi-height histogram with k buckets over
// `sample_sorted`-like integer data is guaranteed to fit the page, found
// by probing the actual encoding (used by the serialization example).
std::uint64_t MaxBucketsForPage(const Histogram& reference,
                                std::uint32_t page_size_bytes);

}  // namespace equihist

#endif  // EQUIHIST_STATS_SERIALIZATION_H_
