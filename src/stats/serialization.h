#ifndef EQUIHIST_STATS_SERIALIZATION_H_
#define EQUIHIST_STATS_SERIALIZATION_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/result.h"
#include "core/histogram.h"
#include "stats/column_statistics.h"

namespace equihist {

// Binary (de)serialization for persisted statistics. SQL Server stores one
// histogram per disk page — "for an integer column this translates to 600
// bins" (Section 7.1, implementation note 5). The format here is a compact
// delta/varint encoding under the same budget: a 600-step histogram over a
// 64-bit integer column fits an 8 KB page with room to spare (tested).
//
// Format (version 1, little-endian varints):
//   u32 magic 'EQHS' | u8 version | varint k | varint n
//   zigzag-varint lower_fence | zigzag-varint upper_fence
//   k-1 zigzag-varint separator deltas (first relative to lower_fence)
//   k   varint bucket counts
// Statistics add: f64 density | f64 distinct | varint heavy-hitter count |
//   per hitter: zigzag-varint value delta, varint count | u8 flags |
//   varint sample_size.
//
// Deserialization validates structure and re-runs Histogram::Create's
// invariant checks, so corrupted bytes yield Status, never UB.

// Appends the encoding of `histogram` to `out`.
void SerializeHistogram(const Histogram& histogram,
                        std::vector<std::uint8_t>* out);

// Parses a histogram from the front of `bytes`; on success advances
// `*consumed` by the number of bytes read (if non-null).
Result<Histogram> DeserializeHistogram(std::span<const std::uint8_t> bytes,
                                       std::size_t* consumed = nullptr);

// Whole-statistics round trip.
void SerializeColumnStatistics(const ColumnStatistics& stats,
                               std::vector<std::uint8_t>* out);
Result<ColumnStatistics> DeserializeColumnStatistics(
    std::span<const std::uint8_t> bytes);

// True if the histogram's encoding fits within `page_size_bytes` — the SQL
// Server one-page budget check.
bool HistogramFitsInPage(const Histogram& histogram,
                         std::uint32_t page_size_bytes);

// The largest k such that an equi-height histogram with k buckets over
// `sample_sorted`-like integer data is guaranteed to fit the page, found
// by probing the actual encoding (used by the serialization example).
std::uint64_t MaxBucketsForPage(const Histogram& reference,
                                std::uint32_t page_size_bytes);

}  // namespace equihist

#endif  // EQUIHIST_STATS_SERIALIZATION_H_
