#ifndef EQUIHIST_STATS_COLUMN_STATISTICS_H_
#define EQUIHIST_STATS_COLUMN_STATISTICS_H_

#include <cstdint>
#include <string>

#include <memory>
#include <span>

#include "common/result.h"
#include "core/compiled_estimator.h"
#include "core/compressed_histogram.h"
#include "core/cvb.h"
#include "core/histogram.h"
#include "data/workload.h"
#include "storage/io_stats.h"
#include "storage/table.h"

namespace equihist {

// The statistics object a database persists per column — exactly the
// bundle the paper's SQL Server prototype collected (Section 7.1):
// an equi-height histogram, the density, and a distinct-value estimate,
// plus the provenance needed to reason about freshness and cost.
struct ColumnStatistics {
  Histogram histogram;
  double density = 0.0;
  double distinct_estimate = 0.0;
  std::uint64_t row_count = 0;
  // Values with multiplicity above one ideal bucket (n/k), pinned with
  // their (estimated) counts — the compressed-histogram singletons of
  // Section 5, sorted by value.
  std::vector<CompressedHistogram::Singleton> heavy_hitters{};
  // How the statistics were built and what they cost.
  bool from_full_scan = false;
  std::uint64_t sample_size = 0;  // tuples examined
  IoStats build_cost{};
  // The histogram flattened for O(log k) serving (core/compiled_estimator.h).
  // Populated by the Build* factories and by deserialization; shared, so
  // copies of the statistics (and snapshot handouts) reuse one compilation.
  // Hand-assembled statistics may leave it null — estimation then falls
  // back to the reference interpolation loop.
  std::shared_ptr<const CompiledEstimator> compiled{};

  // (Re)builds `compiled` from `histogram`. Call after mutating the
  // histogram of a hand-assembled ColumnStatistics.
  void CompileEstimator();

  // -- Optimizer estimation surface ----------------------------------------

  // Estimated output size of "lo < X <= hi" (Section 2.2 strategy), via
  // the compiled estimator when present.
  double EstimateRangeCount(const RangeQuery& query) const;

  // Batch variant: out[i] = EstimateRangeCount(queries[i]); large batches
  // shard across `pool` with bitwise-identical results at any thread
  // count. Requires out.size() >= queries.size().
  void EstimateRangeCounts(std::span<const RangeQuery> queries,
                           std::span<double> out,
                           ThreadPool* pool = nullptr) const;

  // Estimated output size of "X = v". Separator runs pin frequent values
  // exactly (the duplicated-separator representation of Section 5 makes a
  // heavy value's count readable from its zero-width buckets); infrequent
  // values fall back to the density-based average — density*n is the
  // expected count of the value held by a random tuple, SQL Server's
  // classical use of the statistic.
  double EstimateEqualityCount(Value value) const;

  // Estimated reduction n -> d for duplicate elimination (Section 6.2's
  // motivating use of d/n rather than absolute d).
  double EstimateDistinctFraction() const;

  std::string ToString() const;
};

// Builds exact statistics with a full scan and sort (the expensive
// baseline the sampling path avoids). The I/O bill is recorded. With a
// pool, the scan and the sort both run parallel; the result is identical
// for any thread count.
Result<ColumnStatistics> BuildStatisticsFullScan(const Table& table,
                                                 std::uint64_t buckets,
                                                 ThreadPool* pool = nullptr);

// Builds approximate statistics with the adaptive CVB algorithm plus the
// paper's distinct-value estimator over the accumulated sample. `pool`
// (or options.threads when pool is null) drives the parallel stages.
Result<ColumnStatistics> BuildStatisticsSampled(const Table& table,
                                                const CvbOptions& options,
                                                ThreadPool* pool = nullptr);

}  // namespace equihist

#endif  // EQUIHIST_STATS_COLUMN_STATISTICS_H_
