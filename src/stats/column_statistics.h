#ifndef EQUIHIST_STATS_COLUMN_STATISTICS_H_
#define EQUIHIST_STATS_COLUMN_STATISTICS_H_

#include <cstdint>
#include <string>

#include <memory>
#include <span>

#include "common/result.h"
#include "core/compiled_estimator.h"
#include "core/compressed_histogram.h"
#include "core/cvb.h"
#include "core/histogram.h"
#include "data/workload.h"
#include "stats/histogram_model.h"
#include "storage/io_stats.h"
#include "storage/table.h"

namespace equihist {

// The statistics object a database persists per column — exactly the
// bundle the paper's SQL Server prototype collected (Section 7.1): a
// histogram, the density, and a distinct-value estimate, plus the
// provenance needed to reason about freshness and cost.
//
// The histogram is held behind the backend-polymorphic HistogramModel
// interface: equi-height by default (the paper's structure, served through
// the compiled O(log k) read path), but any registered backend — the
// equi-width baseline, Section 5's compressed histograms, a GMP snapshot,
// or an externally registered family — plugs in without changing any
// consumer.
struct ColumnStatistics {
  // The servable histogram; null only for a partially hand-assembled
  // object (estimation then returns 0). Shared and immutable, so copies
  // and snapshot handouts reuse one model (including its compiled read
  // path).
  HistogramModelPtr model{};
  double density = 0.0;
  double distinct_estimate = 0.0;
  std::uint64_t row_count = 0;
  // Values with multiplicity above one ideal bucket (n/k), pinned with
  // their (estimated) counts — the compressed-histogram singletons of
  // Section 5, sorted by value.
  std::vector<CompressedHistogram::Singleton> heavy_hitters{};
  // How the statistics were built and what they cost.
  bool from_full_scan = false;
  std::uint64_t sample_size = 0;  // tuples examined
  IoStats build_cost{};

  // Installs `histogram` as the model, wrapped in the equi-height adapter
  // (which compiles the O(log k) read path). The constructor used by the
  // Build* factories and by hand-assembled test statistics.
  void SetEquiHeight(Histogram histogram);

  // -- Typed access for equi-height-only consumers --------------------------
  //
  // CVB cross-validation, bucket diagnostics and the page-budget check
  // need the concrete equi-height structure. equi_height()/compiled()
  // return null when the model is absent or a different family;
  // histogram() is the assertive form for call sites that know the family
  // (aborts otherwise).
  const Histogram* equi_height() const;
  const CompiledEstimator* compiled() const;
  const Histogram& histogram() const;

  // -- Optimizer estimation surface ----------------------------------------

  // Estimated output size of "lo < X <= hi" (Section 2.2 strategy),
  // through the model; 0 when no model is set.
  double EstimateRangeCount(const RangeQuery& query) const;

  // Batch variant: out[i] = EstimateRangeCount(queries[i]); large batches
  // shard across `pool` with bitwise-identical results at any thread
  // count. Requires out.size() >= queries.size().
  void EstimateRangeCounts(std::span<const RangeQuery> queries,
                           std::span<double> out,
                           ThreadPool* pool = nullptr) const;

  // Estimated output size of "X = v". Heavy values are pinned exactly (the
  // compressed-histogram singleton list collected at build time);
  // infrequent values fall back to the density-based average — density*n
  // is the expected count of the value held by a random tuple, SQL
  // Server's classical use of the statistic.
  double EstimateEqualityCount(Value value) const;

  // Estimated reduction n -> d for duplicate elimination (Section 6.2's
  // motivating use of d/n rather than absolute d).
  double EstimateDistinctFraction() const;

  std::string ToString() const;
};

// Builds exact statistics with a full scan and sort (the expensive
// baseline the sampling path avoids). The I/O bill is recorded. With a
// pool, the scan and the sort both run parallel; the result is identical
// for any thread count.
Result<ColumnStatistics> BuildStatisticsFullScan(const Table& table,
                                                 std::uint64_t buckets,
                                                 ThreadPool* pool = nullptr);

// Builds approximate statistics with the adaptive CVB algorithm plus the
// paper's distinct-value estimator over the accumulated sample. `pool`
// (or options.threads when pool is null) drives the parallel stages.
Result<ColumnStatistics> BuildStatisticsSampled(const Table& table,
                                                const CvbOptions& options,
                                                ThreadPool* pool = nullptr);

// Build parameters for the backend-generic path below.
struct BackendBuildOptions {
  HistogramBackendId backend = HistogramBackendId::kEquiHeight;
  std::uint64_t buckets = 200;
  double f = 0.1;       // target relative max error (Theorem 4 / CVB)
  double gamma = 0.01;  // failure probability
  // Sample with the Theorem 4 budget rather than scanning everything.
  bool prefer_sampling = true;
  std::uint64_t seed = 1;
  // Fault tolerance (DESIGN.md §11): transient-fault retry for every page
  // read issued by the build, and the CVB skip budget — more than
  // `max_skipped_blocks` permanently unreadable blocks fail the build.
  RetryPolicy retry{};
  std::uint64_t max_skipped_blocks = 64;
  // Backing-sample size for the incremental-equi-depth backend (DESIGN.md
  // §15); the effective capacity is never below `buckets`. Ignored by
  // every other backend.
  std::uint64_t reservoir_capacity = 4096;
};

// Builds statistics whose histogram comes from any registered backend.
// The equi-height backend delegates to BuildStatisticsSampled /
// BuildStatisticsFullScan (bit-identical to calling them directly); other
// backends draw one Theorem 4-sized row sample (or full-scan when
// prefer_sampling is false) and hand it to the backend's registered
// builder, with density / distinct / heavy hitters estimated from the
// same sample.
Result<ColumnStatistics> BuildStatisticsWithBackend(
    const Table& table, const BackendBuildOptions& options,
    ThreadPool* pool = nullptr);

// Assembles incremental-equi-depth statistics from a maintained in-memory
// state — the current split/merge histogram plus its backing reservoir —
// with zero storage I/O (DESIGN.md §15). `histogram` supplies the bucket
// boundaries and the live row count; density, distinct estimate and heavy
// hitters are re-derived from the reservoir sample. This is the publish
// step of StatisticsManager's O(Δ) refresh path. Fails
// (FailedPrecondition) on an empty reservoir.
class BackingReservoir;
Result<ColumnStatistics> MakeIncrementalStatistics(
    const Histogram& histogram, BackingReservoir reservoir);

}  // namespace equihist

#endif  // EQUIHIST_STATS_COLUMN_STATISTICS_H_
