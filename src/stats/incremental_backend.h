#ifndef EQUIHIST_STATS_INCREMENTAL_BACKEND_H_
#define EQUIHIST_STATS_INCREMENTAL_BACKEND_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/result.h"
#include "sampling/reservoir.h"
#include "stats/histogram_backends.h"
#include "stats/histogram_model.h"

namespace equihist {

// The incremental-equi-depth backend (DESIGN.md §15): an equi-height
// histogram that carries its live backing reservoir, so the owning
// StatisticsManager can refresh it in O(Δ) by replaying DML through the
// GMP split/merge maintenance (baseline/gmp_incremental) instead of
// re-sampling the table. To the planner it is a normal HistogramModel —
// the reservoir only matters to the maintenance machinery and the wire
// codec.
//
// Payload layout (after the v2 container header): the equi-height payload
// (EquiHeightModel codec, byte-identical) followed by the reservoir
// payload (BackingReservoir codec). Both halves are parsed by hardened
// wire_format readers; corrupted bytes yield Status, never UB.
class IncrementalEquiDepthModel final : public EquiHeightModel {
 public:
  IncrementalEquiDepthModel(Histogram snapshot, BackingReservoir reservoir)
      : EquiHeightModel(std::move(snapshot)),
        reservoir_(std::move(reservoir)) {}

  HistogramBackendId backend_id() const override {
    return HistogramBackendId::kIncrementalEquiDepth;
  }
  std::size_t MemoryBytes() const override;
  std::string Describe() const override;
  void SerializePayload(std::vector<std::uint8_t>* out) const override;

  // The backing sample this histogram was maintained against; the
  // maintenance resume path (IncrementalEquiDepth::FromState) copies it.
  const BackingReservoir& reservoir() const { return reservoir_; }

 private:
  BackingReservoir reservoir_;
};

// Builds the model a seeded reservoir implies: separators from the
// reservoir's sorted contents, counts scaled to reservoir.population().
// FailedPrecondition on an empty reservoir.
Result<HistogramModelPtr> MakeIncrementalModelFromReservoir(
    BackingReservoir reservoir, std::uint64_t buckets);

// Registry hooks (registered by RegisterBuiltinHistogramBackends under
// HistogramBackendId::kIncrementalEquiDepth, name "incremental-equi-depth").
// The build hook holds the whole sample in the reservoir (capacity =
// max(sample size, buckets), fixed seed) so the build is deterministic in
// the sample — the registry contract.
Result<HistogramModelPtr> BuildIncrementalEquiDepthFromSample(
    std::span<const Value> sorted_sample, std::uint64_t buckets,
    std::uint64_t population_size);
Result<HistogramModelPtr> DeserializeIncrementalEquiDepth(
    std::span<const std::uint8_t> payload, std::size_t* consumed);

}  // namespace equihist

#endif  // EQUIHIST_STATS_INCREMENTAL_BACKEND_H_
