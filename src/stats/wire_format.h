#ifndef EQUIHIST_STATS_WIRE_FORMAT_H_
#define EQUIHIST_STATS_WIRE_FORMAT_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "common/result.h"

namespace equihist::wire {

// Little-endian varint/zigzag primitives shared by the serialization
// container (stats/serialization.cc) and the per-backend payload codecs
// (stats/histogram_backends.cc). Header-only so a registered backend
// outside this library can speak the same wire dialect.

inline void PutVarint(std::uint64_t v, std::vector<std::uint8_t>* out) {
  while (v >= 0x80) {
    out->push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out->push_back(static_cast<std::uint8_t>(v));
}

inline std::uint64_t ZigZag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

inline std::int64_t UnZigZag(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^ -static_cast<std::int64_t>(v & 1);
}

inline void PutSigned(std::int64_t v, std::vector<std::uint8_t>* out) {
  PutVarint(ZigZag(v), out);
}

// Wrapping signed subtraction / addition through unsigned arithmetic: the
// delta encoding must survive values anywhere in the int64 domain, where
// plain signed operations overflow (UB). Wrapping is exact —
// WrapAdd(b, WrapSub(a, b)) == a for every pair, including on corrupted
// deltas, which therefore decode to *some* value and are caught by the
// structural validation that follows, never by UB.
inline std::int64_t WrapSub(std::int64_t a, std::int64_t b) {
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) -
                                   static_cast<std::uint64_t>(b));
}

inline std::int64_t WrapAdd(std::int64_t a, std::int64_t delta) {
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) +
                                   static_cast<std::uint64_t>(delta));
}

inline void PutF64(double v, std::vector<std::uint8_t>* out) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<std::uint8_t>(bits >> (8 * i)));
  }
}

// A bounds-checked reader over the byte span. Every accessor returns
// Status on truncation; corrupted input can never read past the buffer.
class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  std::size_t position() const { return pos_; }
  std::size_t remaining() const { return bytes_.size() - pos_; }

  Result<std::uint64_t> Varint() {
    std::uint64_t value = 0;
    int shift = 0;
    while (true) {
      if (pos_ >= bytes_.size()) {
        return Status::InvalidArgument("truncated varint");
      }
      if (shift >= 64) {
        return Status::InvalidArgument("varint overflows 64 bits");
      }
      const std::uint8_t byte = bytes_[pos_++];
      value |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
      if ((byte & 0x80) == 0) return value;
      shift += 7;
    }
  }

  // A varint that announces `per_element` more bytes per counted element
  // (e.g. a length prefix). Rejected up front when the remaining buffer
  // cannot possibly hold that many elements, so a corrupted length can
  // neither over-allocate nor start a doomed multi-gigabyte parse loop.
  Result<std::uint64_t> LengthPrefixedCount(std::uint64_t per_element = 1) {
    EQUIHIST_ASSIGN_OR_RETURN(const std::uint64_t count, Varint());
    if (per_element == 0) per_element = 1;
    if (count > remaining() / per_element) {
      return Status::InvalidArgument(
          "length prefix exceeds the remaining buffer");
    }
    return count;
  }

  Result<std::int64_t> Signed() {
    EQUIHIST_ASSIGN_OR_RETURN(const std::uint64_t raw, Varint());
    return UnZigZag(raw);
  }

  Result<std::uint8_t> Byte() {
    if (pos_ >= bytes_.size()) {
      return Status::InvalidArgument("truncated byte");
    }
    return bytes_[pos_++];
  }

  Result<double> F64() {
    if (remaining() < 8) {
      return Status::InvalidArgument("truncated double");
    }
    std::uint64_t bits = 0;
    for (int i = 0; i < 8; ++i) {
      bits |= static_cast<std::uint64_t>(bytes_[pos_ + i]) << (8 * i);
    }
    pos_ += 8;
    double value;
    std::memcpy(&value, &bits, sizeof(value));
    return value;
  }

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

}  // namespace equihist::wire

#endif  // EQUIHIST_STATS_WIRE_FORMAT_H_
