#ifndef EQUIHIST_STATS_BUILD_SCHEDULER_H_
#define EQUIHIST_STATS_BUILD_SCHEDULER_H_

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/annotations.h"
#include "common/metrics.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "stats/statistics_shard.h"

namespace equihist {

// Asynchronous statistics-build scheduler with priority admission control
// (DESIGN.md §16): the fleet's answer to "thousands of columns want a
// rebuild, storage can afford a few at a time".
//
// Queue order is driven by the PR-4 health signal and DML pressure:
//   1. Health class first — kDegraded beats kStale beats kFresh. A column
//      serving the uniform fallback (or nothing) is strictly more urgent
//      than one serving a stale snapshot, which beats a warm-up build.
//   2. Per-table fairness within a class — tables take round-robin turns,
//      so a BuildAll sweep over one huge table cannot starve another
//      table's refreshes of equal urgency.
//   3. DML pressure within a table — highest modified-fraction first.
//
// Admission: at most `max_inflight` builds run at once on the scheduler's
// ThreadPool (PR 1); the rest wait in the queue. Re-requesting a build
// that is still queued coalesces into the queued entry (severity and
// pressure are raised to the max of the two) instead of queueing twice; a
// build that is already *running* does not absorb new requests — the new
// request queues behind it, because the running build may not reflect the
// DML that motivated the re-request.
//
// Concurrency: every entry point is thread-safe. Completion callbacks run
// on pool threads (or inline on the enqueueing thread when threads == 1,
// which degenerates the scheduler into a deterministic synchronous
// dispatcher — exactly what the priority-order tests pin down).
class BuildScheduler {
 public:
  struct Options {
    // Admission budget: builds running concurrently. Values < 1 are
    // treated as 1.
    std::uint64_t max_inflight = 2;
    // Scheduler pool size (including the dispatching caller, like
    // ThreadPool): 1 runs every build inline on the thread that frees the
    // admission slot — fully deterministic, no thread is ever created.
    std::uint64_t threads = 2;
    // Start with dispatch suspended; builds queue until Resume(). Lets a
    // caller stage a whole workload and then release it in one
    // priority-ordered wave (and makes dispatch order testable).
    bool start_paused = false;
  };

  // One build request. `build` is the work itself (typically a bound
  // EnsureFresh against a shard); everything it references must outlive
  // the scheduler or be kept alive by the closure.
  struct Request {
    std::string table;   // fairness domain
    std::string column;  // (table, column) is the coalescing key
    ColumnHealth health = ColumnHealth::kFresh;
    double pressure = 0.0;  // modified fraction (Health().modified_fraction)
    std::function<Status()> build;
  };

  // `metrics` (optional) receives scheduler counters and queue gauges;
  // it must outlive the scheduler.
  explicit BuildScheduler(const Options& options,
                          metrics::MetricsPlane* metrics = nullptr);

  // Pauses dispatch, waits for inflight builds to finish, and discards
  // anything still queued (their `build` closures never run).
  ~BuildScheduler();

  BuildScheduler(const BuildScheduler&) = delete;
  BuildScheduler& operator=(const BuildScheduler&) = delete;

  // Queues (or coalesces) a request and pumps the admission loop.
  void Enqueue(Request request) EXCLUDES(mu_);

  // Suspends dispatch after the currently inflight builds; queued work
  // waits. Resume() restarts dispatch and pumps.
  void Pause() EXCLUDES(mu_);
  void Resume() EXCLUDES(mu_);

  // Blocks until the queue is empty and nothing is inflight. Do not call
  // while paused with work queued — that never drains; Resume() first.
  void Drain() EXCLUDES(mu_);

  struct Counts {
    std::uint64_t enqueued = 0;   // requests accepted (including coalesced)
    std::uint64_t coalesced = 0;  // requests merged into a queued entry
    std::uint64_t completed = 0;  // builds that returned OK
    std::uint64_t failed = 0;     // builds that returned an error
    std::uint64_t queued = 0;     // currently waiting
    std::uint64_t inflight = 0;   // currently running
  };
  Counts counts() const EXCLUDES(mu_);

  // Failures recorded since the last call, oldest first: ((table, column),
  // status). The internal list is cleared — the fleet's BuildAll
  // aggregation hook.
  std::vector<std::pair<std::string, Status>> TakeFailures() EXCLUDES(mu_);

 private:
  // Health maps to a strict class: 0 = degraded, 1 = stale, 2 = fresh.
  static constexpr std::size_t kClasses = 3;
  static std::size_t ClassOf(ColumnHealth health) {
    return kClasses - 1 - static_cast<std::size_t>(health);
  }

  // One priority class: per-table FIFO-of-turns with the pending tables
  // rotating round-robin; each table's deque is kept sorted by descending
  // pressure (stable for equal pressure: FIFO).
  struct ClassQueue {
    std::deque<std::string> table_turns;  // tables with pending work
    std::map<std::string, std::deque<Request>> by_table;
  };

  bool QueueEmptyLocked() const REQUIRES(mu_);
  std::uint64_t QueuedLocked() const REQUIRES(mu_);
  // Removes and returns the next request per the priority policy.
  Request PopNextLocked() REQUIRES(mu_);
  // Inserts into the right class queue, pressure-sorted within its table.
  void InsertLocked(Request request) REQUIRES(mu_);
  // Merges `request` into a queued entry with the same (table, column),
  // if any (consuming its build closure); true when coalesced.
  bool TryCoalesceLocked(Request& request) REQUIRES(mu_);
  void UpdateGaugesLocked() REQUIRES(mu_);
  // The admission loop: admits requests while slots are free. Exactly one
  // thread pumps at a time (`pumping_`), which keeps inline pools from
  // recursing and bounds everyone else's Enqueue latency.
  void Pump() EXCLUDES(mu_);
  void OnBuildDone(const std::string& table, const std::string& column,
                   Status status) EXCLUDES(mu_);

  const Options options_;
  metrics::MetricsPlane* const metrics_;  // may be null
  std::unique_ptr<ThreadPool> pool_;      // null when threads <= 1 (inline)
  mutable Mutex mu_{lockrank::kBuildScheduler};
  CondVar idle_cv_;
  std::array<ClassQueue, kClasses> classes_ GUARDED_BY(mu_);
  std::uint64_t inflight_ GUARDED_BY(mu_) = 0;
  bool paused_ GUARDED_BY(mu_) = false;
  bool pumping_ GUARDED_BY(mu_) = false;
  bool stopping_ GUARDED_BY(mu_) = false;
  std::uint64_t enqueued_ GUARDED_BY(mu_) = 0;
  std::uint64_t coalesced_ GUARDED_BY(mu_) = 0;
  std::uint64_t completed_ GUARDED_BY(mu_) = 0;
  std::uint64_t failed_ GUARDED_BY(mu_) = 0;
  std::vector<std::pair<std::string, Status>> failures_ GUARDED_BY(mu_);
};

}  // namespace equihist

#endif  // EQUIHIST_STATS_BUILD_SCHEDULER_H_
