#include "stats/link_fault_injection.h"

#include <utility>

namespace equihist::transport {
namespace {

// SplitMix64 finalizer — the same platform-stable mixer the storage
// injector and the RNG seeding use.
std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

std::uint64_t HashDecision(std::uint64_t seed, std::uint64_t connection,
                           std::uint64_t frame_index,
                           LinkDirection direction, std::uint32_t kind_tag) {
  std::uint64_t h = Mix64(seed ^ (0xA0761D6478BD642FULL + kind_tag));
  h = Mix64(h ^ connection);
  h = Mix64(h ^ frame_index);
  return Mix64(h ^ static_cast<std::uint64_t>(direction));
}

}  // namespace

LinkFaultInjector::LinkFaultInjector(LinkFaultSpec spec)
    : spec_(std::move(spec)),
      partitioned_set_(spec_.partitioned_connections.begin(),
                       spec_.partitioned_connections.end()) {}

bool LinkFaultInjector::HashSelects(std::uint64_t connection,
                                    std::uint64_t frame_index,
                                    LinkDirection direction,
                                    std::uint32_t kind_tag, double p) const {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  const double u =
      static_cast<double>(HashDecision(spec_.seed, connection, frame_index,
                                       direction, kind_tag) >>
                          11) *
      0x1.0p-53;
  return u < p;
}

bool LinkFaultInjector::TriggerMatches(std::uint64_t connection,
                                       std::uint64_t frame_index,
                                       LinkDirection direction,
                                       LinkFaultKind kind) const {
  for (const LinkFaultTrigger& t : spec_.triggers) {
    if (t.kind != kind || t.direction != direction ||
        t.frame_index != frame_index) {
      continue;
    }
    if (t.connection == kAnyConnection || t.connection == connection) {
      return true;
    }
  }
  return false;
}

LinkFaultPlan LinkFaultInjector::Decide(std::uint64_t connection,
                                        std::uint64_t frame_index,
                                        LinkDirection direction) {
  LinkFaultPlan plan;
  // Delay is orthogonal: it stacks under any other fault so chaos sweeps
  // exercise slow-and-broken links, not just slow xor broken ones.
  if (TriggerMatches(connection, frame_index, direction,
                     LinkFaultKind::kDelay) ||
      HashSelects(connection, frame_index, direction, 1,
                  spec_.delay_probability)) {
    plan.delay_micros = spec_.delay_micros;
    delays_.fetch_add(1, std::memory_order_relaxed);
  }
  // Explicit triggers first, then probabilities; drop > truncate >
  // corrupt > duplicate keeps overlapping selections deterministic.
  if (TriggerMatches(connection, frame_index, direction,
                     LinkFaultKind::kDrop) ||
      HashSelects(connection, frame_index, direction, 2,
                  spec_.drop_probability)) {
    plan.kind = LinkFaultKind::kDrop;
    drops_.fetch_add(1, std::memory_order_relaxed);
    return plan;
  }
  if (TriggerMatches(connection, frame_index, direction,
                     LinkFaultKind::kTruncate) ||
      HashSelects(connection, frame_index, direction, 3,
                  spec_.truncate_probability)) {
    plan.kind = LinkFaultKind::kTruncate;
    truncates_.fetch_add(1, std::memory_order_relaxed);
    return plan;
  }
  if (TriggerMatches(connection, frame_index, direction,
                     LinkFaultKind::kCorrupt) ||
      HashSelects(connection, frame_index, direction, 4,
                  spec_.corrupt_probability)) {
    plan.kind = LinkFaultKind::kCorrupt;
    corrupts_.fetch_add(1, std::memory_order_relaxed);
    return plan;
  }
  if (TriggerMatches(connection, frame_index, direction,
                     LinkFaultKind::kDuplicate) ||
      HashSelects(connection, frame_index, direction, 5,
                  spec_.duplicate_probability)) {
    plan.kind = LinkFaultKind::kDuplicate;
    duplicates_.fetch_add(1, std::memory_order_relaxed);
    return plan;
  }
  return plan;
}

bool LinkFaultInjector::Partitioned(std::uint64_t connection) const {
  if (partitioned_set_.count(connection) != 0) return true;
  // Partition is a property of the connection, not of any frame: hash on
  // (seed, connection) only, via frame_index 0 and a dedicated kind tag.
  return HashSelects(connection, 0, LinkDirection::kSend, 6,
                     spec_.partition_probability);
}

void LinkFaultInjector::ApplyTruncate(std::uint64_t connection,
                                      std::uint64_t frame_index,
                                      std::vector<std::uint8_t>& bytes) const {
  if (bytes.empty()) return;
  const std::uint64_t h =
      HashDecision(spec_.seed, connection, frame_index, LinkDirection::kSend,
                   7);
  // Strict prefix: [0, size) bytes survive, so at least one byte is lost.
  bytes.resize(h % bytes.size());
}

void LinkFaultInjector::ApplyCorrupt(std::uint64_t connection,
                                     std::uint64_t frame_index,
                                     std::vector<std::uint8_t>& bytes) const {
  if (bytes.empty()) return;
  const std::uint64_t h =
      HashDecision(spec_.seed, connection, frame_index, LinkDirection::kSend,
                   8);
  const std::size_t slot = static_cast<std::size_t>(h % bytes.size());
  // A nonzero mask guarantees the byte really changes.
  bytes[slot] ^= static_cast<std::uint8_t>((h >> 32) | 1);
}

std::uint64_t LinkFaultInjector::total_injected() const {
  return drops_injected() + delays_injected() + truncates_injected() +
         corrupts_injected() + duplicates_injected() + partitions_hit();
}

}  // namespace equihist::transport
