#ifndef EQUIHIST_STATS_HISTOGRAM_MODEL_H_
#define EQUIHIST_STATS_HISTOGRAM_MODEL_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/annotations.h"
#include "common/mutex.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "core/range_estimator.h"
#include "data/value_set.h"
#include "data/workload.h"

namespace equihist {

// The backend-polymorphic statistics layer: every histogram family the
// system can serve — plain equi-height, duplicate-compressed (Section 5),
// the equi-width baseline, the GMP incremental baseline (Section 3.4), and
// anything registered from outside — implements this one interface, and
// every consumer (ColumnStatistics, StatisticsManager, the planner,
// workload evaluation, serialization framing) talks only to it. Adding a
// fifth family means registering a backend; no consumer changes.

// Identifies a histogram family in the registry and on the wire (the one
// tag byte of the serialized container, format version 2).
enum class HistogramBackendId : std::uint8_t {
  kEquiHeight = 0,       // core/histogram + core/compiled_estimator read path
  kEquiWidth = 1,        // baseline/equi_width
  kCompressed = 2,       // core/compressed_histogram (Section 5)
  kGmpIncremental = 3,   // baseline/gmp_incremental snapshot (Section 3.4)
  kFallbackUniform = 4,  // metadata-only uniform model (degraded serving)
  // Equi-height histogram carrying its live backing reservoir, maintained
  // under DML by bucket split/merge instead of full rebuild (DESIGN.md §15).
  kIncrementalEquiDepth = 5,  // stats/incremental_backend
  // Ids 6..127 are reserved for future built-ins; 128..255 are free for
  // externally registered backends.
};

// An immutable, servable histogram. Implementations must be safe for
// concurrent const use from any number of threads with no synchronization —
// the StatisticsManager lock-free serving path hands the same instance to
// every serving thread.
class HistogramModel {
 public:
  virtual ~HistogramModel() = default;

  virtual HistogramBackendId backend_id() const = 0;

  // Estimated output size of "lo < X <= hi" (Section 2.2 strategy).
  virtual double EstimateRangeCount(const RangeQuery& query) const = 0;

  // Batch variant: out[i] = EstimateRangeCount(queries[i]) for every i,
  // bitwise-identical at any thread count. The default loops sequentially
  // (`pool` is a pure throughput knob that backends may ignore); backends
  // with a compiled batch path override. Requires out.size() >=
  // queries.size().
  virtual void EstimateRangeCounts(std::span<const RangeQuery> queries,
                                   std::span<double> out,
                                   ThreadPool* pool = nullptr) const;

  // Estimated selectivity in [0, 1]: EstimateRangeCount / total.
  virtual double EstimateSelectivity(const RangeQuery& query) const;

  virtual std::uint64_t bucket_count() const = 0;
  virtual std::uint64_t total() const = 0;

  // Finite domain fences: the exclusive lower / inclusive upper end of the
  // covered domain (no mass lives outside (lower_fence, upper_fence]).
  virtual Value lower_fence() const = 0;
  virtual Value upper_fence() const = 0;

  // Heap footprint of the model, including derived read-path structures.
  virtual std::size_t MemoryBytes() const = 0;

  // One-line human-readable rendering (family, k, n, domain).
  virtual std::string Describe() const = 0;

  // Appends this model's backend payload — everything after the container
  // header `magic | version | backend id` — to `out`. The matching parser
  // is the backend's registered deserialize_payload hook.
  virtual void SerializePayload(std::vector<std::uint8_t>* out) const = 0;
};

using HistogramModelPtr = std::shared_ptr<const HistogramModel>;

// The process-wide backend registry, keyed by HistogramBackendId. The four
// built-in families are registered on first use; external code may register
// additional backends at any time (thread-safe) and they immediately become
// buildable through StatisticsManager and round-trippable through
// stats/serialization without any changes there.
class HistogramBackendRegistry {
 public:
  struct Backend {
    // Short stable name, e.g. "equi-height" (usable in configs/logs).
    std::string name;
    // Builds a model from a sorted random sample of `population_size`
    // tuples with a budget of `buckets` buckets, counts scaled to the
    // population. Deterministic in its inputs.
    std::function<Result<HistogramModelPtr>(
        std::span<const Value> sorted_sample, std::uint64_t buckets,
        std::uint64_t population_size)>
        build_from_sample;
    // Parses the backend payload of the serialized container; advances
    // *consumed (never null) by the bytes read. Must validate everything:
    // corrupted bytes yield Status, never UB.
    std::function<Result<HistogramModelPtr>(
        std::span<const std::uint8_t> payload, std::size_t* consumed)>
        deserialize_payload;
  };

  // The global registry with the built-in families pre-registered.
  static HistogramBackendRegistry& Global();

  // Registers a backend; FailedPrecondition if the id or name is taken.
  // Both hooks are required.
  Status Register(HistogramBackendId id, Backend backend);

  // Looks up a backend (a copy, so no lock outlives the call); NotFound if
  // the id is unknown.
  Result<Backend> Find(HistogramBackendId id) const;

  // Resolves a backend name ("equi-width", ...) to its id; NotFound if no
  // backend has that name.
  Result<HistogramBackendId> IdForName(std::string_view name) const;

  bool Has(HistogramBackendId id) const;

  // All registered ids, ascending. (Snapshot; concurrent registrations may
  // land after the copy.)
  std::vector<HistogramBackendId> Ids() const;

 private:
  mutable Mutex mu_{lockrank::kBackendRegistry};
  std::map<HistogramBackendId, Backend> backends_ GUARDED_BY(mu_);
};

// Scores `model` against true counts over `truth` — the backend-polymorphic
// face of core/range_estimator's EvaluateRangeWorkload. Equi-height models
// estimate through their compiled read path, so on that backend the report
// matches the core overload exactly.
Result<RangeWorkloadReport> EvaluateRangeWorkload(
    const HistogramModel& model, std::span<const RangeQuery> queries,
    const ValueSet& truth);

namespace internal {
// Defined in histogram_backends.cc; called once by Global().
void RegisterBuiltinHistogramBackends(HistogramBackendRegistry& registry);
}  // namespace internal

}  // namespace equihist

#endif  // EQUIHIST_STATS_HISTOGRAM_MODEL_H_
