#include "stats/statistics_shard.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/rng.h"
#include "stats/histogram_backends.h"
#include "stats/incremental_backend.h"
#include "stats/serialization.h"

namespace equihist {
namespace {

// Errors that mean "storage misbehaved" and are eligible for degraded
// serving; config and precondition errors always propagate to the caller.
bool IsFaultError(StatusCode code) {
  return code == StatusCode::kUnavailable || code == StatusCode::kDataLoss ||
         code == StatusCode::kResourceExhausted;
}

// The metadata-only snapshot published when a column has no trustworthy
// histogram: a uniform model over an unknown domain (System-R magic
// selectivity), distinct ~ rows so equality estimates degrade to ~1.
std::shared_ptr<const ColumnStatistics> MakeFallbackSnapshot(
    const Table& table) {
  const std::uint64_t n = table.tuple_count();
  ColumnStatistics stats;
  stats.model = std::make_shared<FallbackUniformModel>(n, 0, 0);
  stats.row_count = n;
  stats.density = n > 0 ? 1.0 / static_cast<double>(n) : 0.0;
  stats.distinct_estimate = static_cast<double>(n);
  stats.from_full_scan = false;
  stats.sample_size = 0;
  return std::make_shared<const ColumnStatistics>(std::move(stats));
}

// Serving-cache slots kept per thread; old slots are evicted FIFO. The
// cache is a linear-scan vector: with realistically few hot (manager,
// column) pairs per thread this beats any hashed structure.
constexpr std::size_t kMaxServingSlots = 64;

std::uint64_t NextShardId() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

// FNV-1a: a platform-stable column-name hash, so per-column seed streams
// are reproducible everywhere (std::hash is implementation-defined). At
// namespace scope because the fleet routes columns to shards with the
// same hash (stats/statistics_fleet.cc).
std::uint64_t HashColumnName(const std::string& column) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const char c : column) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

StatisticsShard::StatisticsShard(const Options& options)
    : options_(options), shard_id_(NextShardId()) {}

std::uint64_t StatisticsShard::NowMicros() const {
  if (options_.clock) return options_.clock();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

ThreadPool* StatisticsShard::pool() {
  std::call_once(pool_once_, [this]() {
    // Clamped to the core count: builds are CPU-bound and fan-out past the
    // hardware threads strictly regresses (BENCH_parallel_scaling.json).
    const std::size_t threads = ResolveBuildThreadCount(options_.threads);
    if (threads > 1) pool_ = std::make_unique<ThreadPool>(threads);
  });
  return pool_.get();
}

Result<ColumnStatistics> StatisticsShard::Build(const std::string& column,
                                                  const Table& table,
                                                  std::uint64_t seed,
                                                  ThreadPool* build_pool) {
  BackendBuildOptions build;
  build.backend = options_.default_backend;
  const auto it = options_.column_backends.find(column);
  if (it != options_.column_backends.end()) build.backend = it->second;
  build.buckets = options_.buckets;
  build.f = options_.f;
  build.gamma = options_.gamma;
  build.prefer_sampling = options_.prefer_sampling;
  build.seed = seed;
  build.retry = options_.retry;
  build.max_skipped_blocks = options_.max_skipped_blocks;
  build.reservoir_capacity = options_.reservoir_capacity;
  // The equi-height default routes through the CVB / full-scan pipelines
  // exactly as before; other backends sample once and build through the
  // registry.
  return BuildStatisticsWithBackend(table, build, build_pool);
}

std::shared_ptr<StatisticsShard::Entry> StatisticsShard::GetEntry(
    const std::string& column) {
  {
    ReaderMutexLock lock(mu_);
    const auto it = entries_.find(column);
    if (it != entries_.end()) return it->second;
  }
  WriterMutexLock lock(mu_);
  auto [it, inserted] = entries_.try_emplace(column);
  if (inserted) it->second = std::make_shared<Entry>(&mu_);
  return it->second;
}

bool StatisticsShard::IsStaleLocked(const Entry& entry) const {
  if (entry.stats == nullptr) return false;
  if (entry.stats->row_count == 0) return true;
  const double modified_fraction =
      static_cast<double>(
          entry.modifications_since_build.load(std::memory_order_relaxed)) /
      static_cast<double>(entry.stats->row_count);
  return modified_fraction > options_.staleness_threshold;
}

Result<std::shared_ptr<const ColumnStatistics>>
StatisticsShard::BuildAndPublish(const std::string& column, Entry* entry,
                                   const Table& table, bool require_fresh,
                                   Status* build_error) {
  // One build per column at a time: a second thread arriving here blocks
  // until the first publishes, then takes the fresh snapshot below.
  MutexLock build_lock(entry->build_mu);
  std::uint64_t generation = 0;
  std::uint64_t modifications_at_capture = 0;
  bool breaker_open = false;
  Status breaker_status = Status::OK();
  std::shared_ptr<const ColumnStatistics> current;
  {
    ReaderMutexLock lock(mu_);
    entry->AssertReaderHeld();
    if (entry->stats != nullptr && !entry->serving_fallback &&
        (!require_fresh || !IsStaleLocked(*entry))) {
      return entry->stats;
    }
    current = entry->stats;
    // Circuit breaker: while open, don't attempt the *storage* build —
    // noted here, acted on below, after the incremental path got its shot.
    if (entry->breaker_open_until != 0 &&
        NowMicros() < entry->breaker_open_until) {
      breaker_open = true;
      breaker_status = Status::Unavailable(
          "circuit breaker open after " +
          std::to_string(entry->consecutive_build_failures) +
          " consecutive build failures; last: " +
          entry->last_error.ToString());
    }
    generation = entry->generation;
    // Captured now, consumed at publish: only modifications that already
    // existed when this build started may be cleared — DML recorded while
    // the build runs is not reflected in the new snapshot and must keep
    // counting toward its staleness.
    modifications_at_capture =
        entry->modifications_since_build.load(std::memory_order_relaxed);
  }
  // O(Δ) refresh first (DESIGN.md §15): when the live maintained state is
  // warm and within budget, publish from it and skip the storage build
  // entirely. Deliberately tried even while the breaker is open — the
  // refresh reads no pages, so the very faults that opened the breaker
  // cannot hurt it, and it is exactly the repair a column on sick storage
  // wants.
  if (std::shared_ptr<const ColumnStatistics> refreshed =
          TryRefreshIncremental(entry, modifications_at_capture)) {
    return refreshed;
  }
  if (breaker_open) {
    // Keep serving whatever is published (the stale snapshot or the
    // fallback) until the cooldown lets a build through.
    if (current != nullptr) {
      if (build_error != nullptr) *build_error = breaker_status;
      return current;
    }
    return breaker_status;
  }
  // Seed addressed by (shard seed, column, generation): independent of
  // the order in which threads or BuildAll shards reach this column.
  const std::uint64_t seed =
      DeriveStreamSeed(options_.seed ^ HashColumnName(column), generation);
  const std::uint64_t build_started = NowMicros();
  Result<ColumnStatistics> built = Build(column, table, seed, pool());
  if (!built.ok()) {
    if (build_error != nullptr) *build_error = built.status();
    return AbsorbBuildFailure(entry, table, built.status());
  }
  metrics_.Observe(metrics::Hist::kBuildLatencyMicros,
                   NowMicros() - build_started);
  auto snapshot =
      std::make_shared<const ColumnStatistics>(std::move(built).value());
  // The build factories produce the model (with any compiled read-path
  // state) outside any manager lock; the serving path shares it. A
  // model-less snapshot must never publish — the serving path would have
  // nothing to estimate with.
  if (snapshot->model == nullptr) {
    return Status::Internal("built statistics carry no histogram model");
  }
  {
    WriterMutexLock lock(mu_);
    entry->AssertWriterHeld();
    total_build_cost_ += snapshot->build_cost;
    entry->stats = snapshot;
    entry->model = snapshot->model;
    entry->generation = generation + 1;
    // A successful build heals everything: breaker closed, fallback and
    // quarantine replaced by the real snapshot.
    entry->consecutive_build_failures = 0;
    entry->breaker_open_until = 0;
    entry->serving_fallback = false;
    entry->quarantined = false;
    entry->last_error = Status::OK();
    // Release-publish so a serving thread that observes the new counter
    // also observes the snapshot it validates.
    entry->published.fetch_add(1, std::memory_order_release);
    // Subtract the captured count instead of resetting to zero:
    // modifications recorded after the capture raced the build, are not
    // reflected in the snapshot just published, and must survive into
    // the new generation's staleness accounting. (The previous
    // unconditional store(0) — issued after the lock was released, no
    // less — silently erased them.)
    entry->modifications_since_build.fetch_sub(modifications_at_capture,
                                               std::memory_order_relaxed);
  }
  // Re-arm (or disarm) the live maintenance state from the fresh snapshot.
  // DML that raced the build and landed in the old live state is simply
  // superseded: it still counts toward staleness via the counter above.
  WarmMaintenance(entry, *snapshot);
  rebuilds_.fetch_add(1, std::memory_order_relaxed);
  metrics_.Increment(metrics::Counter::kBuildsCompleted);
  return snapshot;
}

std::shared_ptr<const ColumnStatistics>
StatisticsShard::TryRefreshIncremental(
    Entry* entry, std::uint64_t modifications_at_capture) {
  // Snapshot the live state under its own lock, then assemble and publish
  // with no maintenance lock held — DML keeps flowing while we publish.
  std::optional<Histogram> histogram;
  std::optional<BackingReservoir> reservoir;
  {
    MutexLock lock(entry->maintenance.mu);
    MaintenanceState& m = entry->maintenance;
    if (!m.live.has_value()) return nullptr;  // cold: never warmed, or disarmed
    // Count-only modifications never reached the reservoir; the live state
    // is unrepresentative and only a full rebuild can catch up.
    if (m.opaque_modifications != 0) return nullptr;
    const BackingReservoir& backing = m.live->backing_sample();
    if (backing.population() == 0 || backing.size() == 0) return nullptr;
    // Counted-replacement deletes drain the reservoir without refilling
    // it; below the fill floor its quantiles are too coarse to trust.
    if (backing.fill_fraction() < options_.reservoir_min_fill) return nullptr;
    // Repair budget: past this much absorbed DML (relative to the live row
    // count) the accumulated drift calls for a reseed from the table.
    if (static_cast<double>(backing.ops_since_seed()) >
        options_.incremental_repair_budget *
            static_cast<double>(backing.population())) {
      return nullptr;
    }
    Result<Histogram> snapshot = m.live->Snapshot();
    if (!snapshot.ok()) return nullptr;  // pre-first-insert: nothing to publish
    histogram = std::move(snapshot).value();
    reservoir = backing;  // copy; `live` keeps absorbing DML meanwhile
  }
  Result<ColumnStatistics> built =
      MakeIncrementalStatistics(*histogram, std::move(*reservoir));
  if (!built.ok()) return nullptr;  // fall through to the full build
  auto snapshot =
      std::make_shared<const ColumnStatistics>(std::move(built).value());
  {
    WriterMutexLock lock(mu_);
    entry->AssertWriterHeld();
    entry->stats = snapshot;
    entry->model = snapshot->model;
    entry->generation += 1;
    // A successful refresh heals like a successful build: the column is
    // demonstrably servable again, breaker and degradation flags drop.
    entry->consecutive_build_failures = 0;
    entry->breaker_open_until = 0;
    entry->serving_fallback = false;
    entry->quarantined = false;
    entry->last_error = Status::OK();
    entry->published.fetch_add(1, std::memory_order_release);
    entry->modifications_since_build.fetch_sub(modifications_at_capture,
                                               std::memory_order_relaxed);
  }
  incremental_refreshes_.fetch_add(1, std::memory_order_relaxed);
  metrics_.Increment(metrics::Counter::kIncrementalRefreshes);
  return snapshot;
}

void StatisticsShard::WarmMaintenance(Entry* entry,
                                        const ColumnStatistics& stats) {
  const auto* incremental =
      dynamic_cast<const IncrementalEquiDepthModel*>(stats.model.get());
  MutexLock lock(entry->maintenance.mu);
  MaintenanceState& m = entry->maintenance;
  // The snapshot subsumes everything recorded so far, opaque or not.
  m.opaque_modifications = 0;
  m.live.reset();
  if (incremental == nullptr) return;  // other families stay cold
  GmpOptions gmp;
  gmp.buckets = incremental->histogram().bucket_count();
  gmp.reservoir_capacity = incremental->reservoir().capacity();
  gmp.seed = options_.seed;
  Result<IncrementalEquiDepth> live = IncrementalEquiDepth::FromState(
      gmp, incremental->histogram(), incremental->reservoir());
  // On failure the state stays cold and every refresh falls back to a
  // full rebuild — degraded but correct.
  if (live.ok()) m.live.emplace(std::move(live).value());
}

void StatisticsShard::RecordInsert(const std::string& column, Value value) {
  metrics_.Increment(metrics::Counter::kDmlRecords);
  std::shared_ptr<Entry> entry;
  {
    ReaderMutexLock lock(mu_);
    const auto it = entries_.find(column);
    if (it == entries_.end()) return;
    entry = it->second;
  }
  entry->modifications_since_build.fetch_add(1, std::memory_order_relaxed);
  MutexLock lock(entry->maintenance.mu);
  if (entry->maintenance.live.has_value()) {
    entry->maintenance.live->Insert(value);
  }
}

void StatisticsShard::RecordDelete(const std::string& column, Value value) {
  metrics_.Increment(metrics::Counter::kDmlRecords);
  std::shared_ptr<Entry> entry;
  {
    ReaderMutexLock lock(mu_);
    const auto it = entries_.find(column);
    if (it == entries_.end()) return;
    entry = it->second;
  }
  entry->modifications_since_build.fetch_add(1, std::memory_order_relaxed);
  MutexLock lock(entry->maintenance.mu);
  if (entry->maintenance.live.has_value()) {
    entry->maintenance.live->Delete(value);
  }
}

Result<std::shared_ptr<const ColumnStatistics>>
StatisticsShard::AbsorbBuildFailure(Entry* entry, const Table& table,
                                    const Status& error) {
  metrics_.Increment(metrics::Counter::kBuildsFailed);
  // Non-fault errors (bad options, empty table, internal bugs) are the
  // caller's problem: no breaker, no degradation, just the error.
  if (!IsFaultError(error.code())) return error;
  {
    WriterMutexLock lock(mu_);
    entry->AssertWriterHeld();
    ++entry->consecutive_build_failures;
    ++entry->total_build_failures;
    entry->last_error = error;
    if (entry->consecutive_build_failures >=
        options_.breaker_failure_threshold) {
      entry->breaker_open_until =
          NowMicros() + options_.breaker_cooldown_micros;
    }
    // Stale-while-error: the failed rebuild leaves the published snapshot
    // untouched (`published` is NOT bumped), so every serving thread keeps
    // its cached snapshot with zero extra cost. The staleness that caused
    // the rebuild persists — the modification counter is not reset — so
    // the next EnsureFresh tries again (breaker permitting).
    if (entry->stats != nullptr) return entry->stats;
  }
  if (!options_.fallback_on_unbuilt) return error;
  // Never-built column on faulty storage: publish the metadata-only
  // uniform fallback so estimation stays available. Health reports
  // kDegraded; a later successful build replaces it.
  auto snapshot = MakeFallbackSnapshot(table);
  {
    WriterMutexLock lock(mu_);
    entry->AssertWriterHeld();
    entry->stats = snapshot;
    entry->model = snapshot->model;
    entry->serving_fallback = true;
    entry->published.fetch_add(1, std::memory_order_release);
  }
  metrics_.Increment(metrics::Counter::kFallbackPublishes);
  return snapshot;
}

Result<std::shared_ptr<const ColumnStatistics>>
StatisticsShard::GetOrBuildShared(const std::string& column,
                                    const Table& table) {
  {
    ReaderMutexLock lock(mu_);
    const auto it = entries_.find(column);
    if (it != entries_.end()) {
      const Entry& entry = *it->second;
      entry.AssertReaderHeld();
      // A fallback snapshot doesn't satisfy GetOrBuild: fall through and
      // try a real build (the breaker inside BuildAndPublish rate-limits
      // it).
      if (entry.stats != nullptr && !entry.serving_fallback) {
        return entry.stats;
      }
    }
  }
  const std::shared_ptr<Entry> entry = GetEntry(column);
  return BuildAndPublish(column, entry.get(), table, /*require_fresh=*/false);
}

Result<const ColumnStatistics*> StatisticsShard::GetOrBuild(
    const std::string& column, const Table& table) {
  EQUIHIST_ASSIGN_OR_RETURN(const std::shared_ptr<const ColumnStatistics> s,
                            GetOrBuildShared(column, table));
  // The entry keeps a reference; the raw pointer stays valid until the
  // column is rebuilt or dropped, as before.
  return s.get();
}

void StatisticsShard::RecordModifications(const std::string& column,
                                          std::uint64_t count) {
  metrics_.Increment(metrics::Counter::kDmlRecords);
  std::shared_ptr<Entry> entry;
  {
    ReaderMutexLock lock(mu_);
    const auto it = entries_.find(column);
    if (it == entries_.end()) return;
    entry = it->second;
  }
  entry->modifications_since_build.fetch_add(count,
                                             std::memory_order_relaxed);
  if (count == 0) return;
  // Opaque DML disqualifies incremental refresh until the next warm-up:
  // the values never reached the reservoir (see TryRefreshIncremental).
  MutexLock lock(entry->maintenance.mu);
  entry->maintenance.opaque_modifications += count;
}

bool StatisticsShard::IsStale(const std::string& column) const {
  ReaderMutexLock lock(mu_);
  const auto it = entries_.find(column);
  if (it == entries_.end()) return false;
  const Entry& entry = *it->second;
  entry.AssertReaderHeld();
  return IsStaleLocked(entry);
}

Result<std::shared_ptr<const ColumnStatistics>>
StatisticsShard::EnsureFreshInternal(const std::string& column,
                                       const Table& table,
                                       Status* build_error) {
  {
    ReaderMutexLock lock(mu_);
    const auto it = entries_.find(column);
    if (it != entries_.end()) {
      const Entry& entry = *it->second;
      entry.AssertReaderHeld();
      if (entry.stats != nullptr && !entry.serving_fallback &&
          !IsStaleLocked(entry)) {
        return entry.stats;
      }
    }
  }
  const std::shared_ptr<Entry> entry = GetEntry(column);
  return BuildAndPublish(column, entry.get(), table, /*require_fresh=*/true,
                         build_error);
}

Result<std::shared_ptr<const ColumnStatistics>>
StatisticsShard::EnsureFreshShared(const std::string& column,
                                     const Table& table) {
  return EnsureFreshInternal(column, table, /*build_error=*/nullptr);
}

Result<const ColumnStatistics*> StatisticsShard::EnsureFresh(
    const std::string& column, const Table& table) {
  EQUIHIST_ASSIGN_OR_RETURN(const std::shared_ptr<const ColumnStatistics> s,
                            EnsureFreshShared(column, table));
  return s.get();
}

StatisticsShard::BuildAllResult StatisticsShard::BuildAll(
    const std::vector<std::string>& columns, const Table& table) {
  // Per-column outcome: the build error even when degraded serving
  // absorbed it, or the propagated error for non-fault failures.
  auto build_one = [this, &table](const std::string& column) -> Status {
    Status build_error = Status::OK();
    const auto result = EnsureFreshInternal(column, table, &build_error);
    if (!result.ok()) return result.status();
    return build_error;
  };

  BuildAllResult result;
  result.attempted = columns.size();
  std::vector<Status> outcomes(columns.size());
  ThreadPool* fan_out = pool();
  if (fan_out == nullptr) {
    for (std::size_t i = 0; i < columns.size(); ++i) {
      outcomes[i] = build_one(columns[i]);
    }
  } else {
    // Each column is one pool task; its build then uses the same pool for
    // its internal stages (ParallelFor callers participate, so the nesting
    // cannot starve). Every column is attempted regardless of failures.
    std::vector<std::future<Status>> pending;
    pending.reserve(columns.size());
    for (const std::string& column : columns) {
      pending.push_back(fan_out->Submit(
          [&build_one, column]() -> Status { return build_one(column); }));
    }
    for (std::size_t i = 0; i < pending.size(); ++i) {
      outcomes[i] = pending[i].get();
    }
  }
  for (std::size_t i = 0; i < columns.size(); ++i) {
    if (outcomes[i].ok()) {
      ++result.succeeded;
    } else {
      result.failed.emplace_back(columns[i], outcomes[i]);
    }
  }
  return result;
}

Status StatisticsShard::InstallSerializedStatistics(
    const std::string& column, std::span<const std::uint8_t> bytes) {
  const std::shared_ptr<Entry> entry = GetEntry(column);
  // Installs serialize against live builds of the same column.
  MutexLock build_lock(entry->build_mu);
  // Same race-free accounting as BuildAndPublish: the blob reflects DML
  // up to (at most) this point, so only modifications already recorded
  // may be cleared when it publishes.
  const std::uint64_t modifications_at_capture =
      entry->modifications_since_build.load(std::memory_order_relaxed);
  Result<ColumnStatistics> parsed = DeserializeColumnStatistics(bytes);
  if (parsed.ok() && parsed->model == nullptr) {
    parsed = Status::DataLoss("serialized statistics carry no histogram");
  }
  if (!parsed.ok()) {
    // Quarantine: reject the blob, record why, keep serving whatever was
    // published before. The flag clears on the next successful install or
    // live build.
    WriterMutexLock lock(mu_);
    entry->AssertWriterHeld();
    entry->quarantined = true;
    entry->last_error = parsed.status();
    return parsed.status();
  }
  auto snapshot =
      std::make_shared<const ColumnStatistics>(std::move(parsed).value());
  {
    WriterMutexLock lock(mu_);
    entry->AssertWriterHeld();
    entry->stats = snapshot;
    entry->model = snapshot->model;
    entry->generation += 1;
    entry->serving_fallback = false;
    entry->quarantined = false;
    entry->consecutive_build_failures = 0;
    entry->breaker_open_until = 0;
    entry->last_error = Status::OK();
    entry->published.fetch_add(1, std::memory_order_release);
    entry->modifications_since_build.fetch_sub(modifications_at_capture,
                                               std::memory_order_relaxed);
  }
  // An installed incremental-equi-depth blob carries its reservoir, so
  // restore-from-catalog re-arms O(Δ) maintenance just like a live build.
  WarmMaintenance(entry.get(), *snapshot);
  return Status::OK();
}

ColumnHealthReport StatisticsShard::Health(const std::string& column) const {
  ColumnHealthReport report;
  ReaderMutexLock lock(mu_);
  const auto it = entries_.find(column);
  if (it == entries_.end()) return report;  // unknown: kDegraded, !exists
  const Entry& entry = *it->second;
  entry.AssertReaderHeld();
  report.exists = true;
  report.serving_fallback = entry.serving_fallback;
  report.quarantined = entry.quarantined;
  report.consecutive_build_failures = entry.consecutive_build_failures;
  report.total_build_failures = entry.total_build_failures;
  if (entry.stats != nullptr && entry.stats->row_count > 0) {
    report.modified_fraction =
        static_cast<double>(entry.modifications_since_build.load(
            std::memory_order_relaxed)) /
        static_cast<double>(entry.stats->row_count);
  }
  report.last_error = entry.last_error;
  report.breaker_open = entry.breaker_open_until != 0 &&
                        NowMicros() < entry.breaker_open_until;
  if (entry.stats == nullptr || entry.serving_fallback || entry.quarantined) {
    report.health = ColumnHealth::kDegraded;
  } else if (IsStaleLocked(entry) || entry.consecutive_build_failures > 0) {
    report.health = ColumnHealth::kStale;
  } else {
    report.health = ColumnHealth::kFresh;
  }
  return report;
}

bool StatisticsShard::Drop(const std::string& column) {
  WriterMutexLock lock(mu_);
  const auto it = entries_.find(column);
  if (it == entries_.end()) return false;
  it->second->AssertWriterHeld();
  // A placeholder whose first build failed never became visible.
  const bool existed = it->second->stats != nullptr;
  // Invalidate every thread's serving cache: the bump makes any cached
  // publication count stale, and the refresh goes through the map — where
  // the column no longer exists — rather than the detached entry node.
  it->second->published.fetch_add(1, std::memory_order_release);
  entries_.erase(it);
  return existed;
}

// -- Lock-free serving path --------------------------------------------------

std::vector<StatisticsShard::CachedServing>&
StatisticsShard::ServingCache() {
  thread_local std::vector<CachedServing> cache;
  return cache;
}

StatisticsShard::CachedServing* StatisticsShard::FindCachedServing(
    const std::string& column) {
  for (CachedServing& slot : ServingCache()) {
    if (slot.shard_id == shard_id_ && slot.column == column) return &slot;
  }
  return nullptr;
}

Result<StatisticsShard::CachedServing*> StatisticsShard::RefreshServing(
    const std::string& column, const Table& table) {
  metrics_.Increment(metrics::Counter::kServingCacheRefreshes);
  // Capture always resolves through the entry map, never through a cached
  // entry pointer: an entry detached by Drop must not be re-validated, or
  // a thread could serve a dropped column forever.
  for (int attempt = 0; attempt < 3; ++attempt) {
    std::shared_ptr<Entry> entry;
    CachedServing fresh;
    {
      ReaderMutexLock lock(mu_);
      const auto it = entries_.find(column);
      if (it != entries_.end()) {
        it->second->AssertReaderHeld();
        if (it->second->stats != nullptr) {
          entry = it->second;
          // Counter and snapshot are mutually consistent here: publishes
          // mutate both under the exclusive lock we are sharing against.
          fresh.published = entry->published.load(std::memory_order_acquire);
          fresh.stats = it->second->stats;
          fresh.model = it->second->model;
        }
      }
    }
    if (entry != nullptr) {
      fresh.shard_id = shard_id_;
      fresh.column = column;
      fresh.entry = std::move(entry);
      std::vector<CachedServing>& cache = ServingCache();
      CachedServing* slot = FindCachedServing(column);
      if (slot == nullptr) {
        if (cache.size() >= kMaxServingSlots) cache.erase(cache.begin());
        slot = &cache.emplace_back();
      }
      *slot = std::move(fresh);
      return slot;
    }
    // Missing or never-built column: build through the normal path, then
    // re-capture. Another thread may Drop between the build and the
    // capture, hence the (bounded) retry loop.
    const std::shared_ptr<Entry> node = GetEntry(column);
    EQUIHIST_ASSIGN_OR_RETURN(
        const auto built,
        BuildAndPublish(column, node.get(), table, /*require_fresh=*/false));
    (void)built;
  }
  return Status::Internal(
      "statistics were repeatedly dropped while refreshing the serving path");
}

Result<double> StatisticsShard::EstimateRange(const std::string& column,
                                              const Table& table,
                                              const RangeQuery& query) {
  metrics_.Increment(metrics::Counter::kEstimateQueries);
  CachedServing* slot = FindCachedServing(column);
  if (slot == nullptr || slot->entry->published.load(
                             std::memory_order_acquire) != slot->published) {
    EQUIHIST_ASSIGN_OR_RETURN(slot, RefreshServing(column, table));
  }
  return slot->model->EstimateRangeCount(query);
}

Status StatisticsShard::EstimateRanges(const std::string& column,
                                       const Table& table,
                                       std::span<const RangeQuery> queries,
                                       std::span<double> out, bool use_pool) {
  if (out.size() < queries.size()) {
    return Status::InvalidArgument(
        "output span smaller than the query batch");
  }
  metrics_.Increment(metrics::Counter::kEstimateQueries, queries.size());
  CachedServing* slot = FindCachedServing(column);
  if (slot == nullptr || slot->entry->published.load(
                             std::memory_order_acquire) != slot->published) {
    EQUIHIST_ASSIGN_OR_RETURN(slot, RefreshServing(column, table));
  }
  slot->model->EstimateRangeCounts(queries, out,
                                   use_pool ? pool() : nullptr);
  return Status::OK();
}

Status StatisticsShard::EstimateBatch(
    const Table& table, std::span<const BatchEstimateRequest> requests,
    BatchEstimateResult* result, bool use_pool) {
  if (result == nullptr) {
    return Status::InvalidArgument("null batch result");
  }
  const std::size_t n = requests.size();
  result->estimates.assign(n, 0.0);
  if (n == 0) return Status::OK();
  metrics_.Increment(metrics::Counter::kEstimateBatches);
  metrics_.Increment(metrics::Counter::kEstimateQueries, n);
  metrics_.Observe(metrics::Hist::kEstimateBatchSize, n);
  // Group the interleaved requests by column, resolving each distinct
  // column's serving snapshot exactly once through the lock-free cache.
  // The model shared_ptr is copied out of the thread-local slot right
  // away: resolving the *next* column can evict or reallocate slots and
  // invalidate the pointer (the copy also pins the snapshot for the rest
  // of the batch, so a concurrent rebuild cannot pull it out from under
  // the later estimation pass).
  //
  // A predicate list names a handful of columns, so the group table is a
  // flat linear-scanned vector, and the per-group query lists live in one
  // shared gather buffer (counting-sort layout) — the whole batch costs a
  // fixed number of allocations regardless of column interleaving.
  struct ColumnGroup {
    const std::string* column = nullptr;  // borrowed from requests[]
    HistogramModelPtr model;
    std::size_t count = 0;
    std::size_t offset = 0;
  };
  std::vector<ColumnGroup> groups;
  std::vector<std::size_t> group_of(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t g = 0;
    while (g < groups.size() && *groups[g].column != requests[i].column) ++g;
    if (g == groups.size()) {
      CachedServing* slot = FindCachedServing(requests[i].column);
      if (slot == nullptr ||
          slot->entry->published.load(std::memory_order_acquire) !=
              slot->published) {
        EQUIHIST_ASSIGN_OR_RETURN(slot,
                                  RefreshServing(requests[i].column, table));
      }
      groups.push_back(ColumnGroup{&requests[i].column, slot->model, 0, 0});
    }
    ++groups[g].count;
    group_of[i] = g;
  }
  ThreadPool* fan_out = use_pool ? pool() : nullptr;
  // Single-column batch (the common planner case): the grouped layout is
  // the request order, so estimate straight into the result.
  if (groups.size() == 1) {
    std::vector<RangeQuery> queries(n);
    for (std::size_t i = 0; i < n; ++i) queries[i] = requests[i].query;
    groups[0].model->EstimateRangeCounts(
        queries, std::span<double>(result->estimates), fan_out);
    return Status::OK();
  }
  // Multi-column: stable counting sort of the queries into per-group runs
  // of one shared buffer, one batch estimation per run (all snapshots
  // pinned above, so the answers are a consistent cut across columns),
  // then one scatter back to request order.
  std::size_t offset = 0;
  for (ColumnGroup& group : groups) {
    group.offset = offset;
    offset += group.count;
  }
  std::vector<RangeQuery> queries(n);
  std::vector<std::size_t> cursor(groups.size(), 0);
  for (std::size_t i = 0; i < n; ++i) {
    queries[groups[group_of[i]].offset + cursor[group_of[i]]++] =
        requests[i].query;
  }
  std::vector<double> scratch(n);
  for (const ColumnGroup& group : groups) {
    group.model->EstimateRangeCounts(
        std::span<const RangeQuery>(queries.data() + group.offset,
                                    group.count),
        std::span<double>(scratch.data() + group.offset, group.count),
        fan_out);
  }
  // Replaying the cursor walk inverts the counting sort without a
  // positions side table.
  std::fill(cursor.begin(), cursor.end(), 0);
  for (std::size_t i = 0; i < n; ++i) {
    result->estimates[i] =
        scratch[groups[group_of[i]].offset + cursor[group_of[i]]++];
  }
  return Status::OK();
}

bool StatisticsShard::Has(const std::string& column) const {
  ReaderMutexLock lock(mu_);
  const auto it = entries_.find(column);
  if (it == entries_.end()) return false;
  it->second->AssertReaderHeld();
  return it->second->stats != nullptr;
}

std::size_t StatisticsShard::size() const {
  ReaderMutexLock lock(mu_);
  std::size_t count = 0;
  for (const auto& [name, entry] : entries_) {
    entry->AssertReaderHeld();
    if (entry->stats != nullptr) ++count;
  }
  return count;
}

IoStats StatisticsShard::total_build_cost() const {
  ReaderMutexLock lock(mu_);
  return total_build_cost_;
}

std::uint64_t StatisticsShard::stale_count() const {
  ReaderMutexLock lock(mu_);
  std::uint64_t stale = 0;
  for (const auto& [name, entry] : entries_) {
    entry->AssertReaderHeld();
    if (IsStaleLocked(*entry)) ++stale;
  }
  return stale;
}

}  // namespace equihist
