#ifndef EQUIHIST_STATS_TRANSPORT_CLIENT_H_
#define EQUIHIST_STATS_TRANSPORT_CLIENT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/annotations.h"
#include "common/metrics.h"
#include "common/mutex.h"
#include "common/result.h"
#include "common/retry.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "stats/fleet_wire.h"
#include "stats/transport.h"

namespace equihist::transport {

// The resilient client over Transport links (DESIGN.md §17). Layers, from
// the outside in:
//
//   deadline   — every Call carries a budget; it bounds every wait below
//                and is propagated to the server's admission check. An
//                exhausted budget is final: kDeadlineExceeded, and the
//                retry layer never spends an attempt on it.
//   retries    — idempotent calls only (estimates, metrics), only on
//                kUnavailable, with jittered exponential backoff
//                (common/retry.h): transport failures are correlated
//                across clients, so un-jittered backoff would stampede a
//                recovering peer.
//   hedging    — after the observed round-trip latency percentile with no
//                answer, an idempotent call is raced on a second
//                connection; first success wins, the loser is discarded.
//   breakers   — per peer, the PR-4 state machine (N consecutive
//                failures open it; after a cooldown one probe passes
//                half-open; success closes). Open peers are skipped;
//                with every breaker open the call fast-fails
//                kUnavailable without touching the network.
//   shedding   — a server kResourceExhausted rejection is backpressure:
//                typed, counted, and NEVER retried (retrying into an
//                overloaded server is how collapses happen).
//
// Chaos invariant (pinned by the transport chaos suite): under any mix of
// link faults every Call returns a typed Status within its deadline — no
// fault class can wedge a caller thread.
class TransportClient {
 public:
  // One server the client can reach. `connect` dials a fresh link within
  // the given budget; the client pools returned links per peer and
  // discards broken ones.
  struct Peer {
    std::string name;
    std::function<Result<std::unique_ptr<Transport>>(std::uint64_t)> connect;
  };

  struct Options {
    // Retry schedule for idempotent calls (attempts include the first).
    RetryPolicy retry{};
    // Backoff jitter fraction in [0, 1] and the seed of its random
    // stream (deterministic per client).
    double retry_jitter = 0.25;
    std::uint64_t jitter_seed = 0;
    // Budget when Call is given none.
    std::uint64_t default_deadline_micros = 1'000'000;
    // Cap per attempt (0 = whatever remains of the call budget). With a
    // cap, an attempt that times out while overall budget remains is a
    // *transient* failure — the next attempt may land on a healthier
    // connection.
    std::uint64_t attempt_timeout_micros = 0;
    // Hedged reads. Off, attempts run inline on the caller; on, they run
    // on a small internal pool so the hedge can overtake a stalled
    // primary.
    bool enable_hedging = false;
    // Launch the hedge after this percentile of the recent round-trip
    // window...
    double hedge_percentile = 0.95;
    // ...but never earlier than this, and before the window has warmed
    // up (8 samples) after this initial delay.
    std::uint64_t hedge_min_delay_micros = 100;
    std::uint64_t hedge_initial_delay_micros = 10'000;
    std::size_t latency_window = 64;
    // Per-peer circuit breaker (PR-4 semantics).
    std::uint64_t breaker_failure_threshold = 3;
    std::uint64_t breaker_cooldown_micros = 1'000'000;
    // Monotonic microsecond clock driving breaker cooldowns; null uses
    // steady_clock. Tests inject a manual clock.
    std::function<std::uint64_t()> clock{};
    // Optional metrics plane; must outlive the client.
    metrics::MetricsPlane* metrics = nullptr;
  };

  explicit TransportClient(Options options);
  ~TransportClient();
  TransportClient(const TransportClient&) = delete;
  TransportClient& operator=(const TransportClient&) = delete;

  // Peers are tried round-robin; the hedge goes to a different peer than
  // the primary when more than one is registered.
  void AddPeer(Peer peer);
  std::size_t peer_count() const;

  // Sends one fleetwire request frame and returns the response frame.
  // `idempotent` gates retries and hedging: estimate and metrics reads
  // are; build-control mutations are not (a retried kRecordModifications
  // would double-count). `deadline_micros` of 0 uses the default budget.
  // Rejection frames come back as their carried Status, never as bytes.
  Result<std::vector<std::uint8_t>> Call(std::span<const std::uint8_t> frame,
                                         bool idempotent,
                                         std::uint64_t deadline_micros = 0);

  // -- Typed convenience wrappers ------------------------------------------

  // Idempotent: retried and hedged.
  Result<std::vector<double>> EstimateBatch(
      const std::vector<BatchEstimateRequest>& requests,
      std::uint64_t deadline_micros = 0);
  // Not idempotent: one attempt, no hedge. The returned Status is the
  // remote build outcome (transport failures surface the same way).
  Status BuildControl(fleetwire::BuildOp op, const std::string& column,
                      std::uint64_t count = 0,
                      std::uint64_t deadline_micros = 0);
  // Idempotent: retried and hedged.
  Result<std::string> FetchMetricsJson(std::uint64_t deadline_micros = 0);

 private:
  struct PeerState;
  struct Exchange;

  std::uint64_t NowMicros() const;
  // Breaker admission for `peer` (closed or half-open probe allowed).
  bool BreakerAdmits(PeerState& peer) REQUIRES(mu_);
  void RecordBreakerSuccess(PeerState& peer) REQUIRES(mu_);
  void RecordBreakerFailure(PeerState& peer) REQUIRES(mu_);
  // The hedge launch delay from the latency window.
  std::uint64_t HedgeDelayMicros() REQUIRES(mu_);
  void RecordLatency(std::uint64_t micros) REQUIRES(mu_);

  // One macro-attempt: primary (+ optional hedge) against distinct
  // peers, first success wins, every wait bounded by `deadline_abs`.
  Result<std::vector<std::uint8_t>> HedgedAttempt(
      std::span<const std::uint8_t> frame, bool idempotent,
      std::uint64_t deadline_abs) EXCLUDES(mu_);
  // One wire exchange against one peer (connect or reuse, round-trip,
  // pool or discard).
  Result<std::vector<std::uint8_t>> SingleExchange(std::size_t peer_index,
                                                   std::span<const std::uint8_t>
                                                       frame,
                                                   std::uint64_t deadline_abs)
      EXCLUDES(mu_);

  Options options_;

  mutable Mutex mu_{lockrank::kTransportClient};
  std::vector<std::unique_ptr<PeerState>> peers_ GUARDED_BY(mu_);
  std::size_t next_peer_ GUARDED_BY(mu_) = 0;
  Rng jitter_rng_ GUARDED_BY(mu_);
  std::vector<std::uint64_t> latency_window_ GUARDED_BY(mu_);
  std::size_t latency_next_ GUARDED_BY(mu_) = 0;

  // Runs hedged attempts so a hedge can finish while the primary is
  // stuck. Sized 3 (= 2 workers + caller). Declared LAST: its destructor
  // joins in-flight attempts while every member they touch is still
  // alive.
  std::unique_ptr<ThreadPool> hedge_pool_;
};

}  // namespace equihist::transport

#endif  // EQUIHIST_STATS_TRANSPORT_CLIENT_H_
