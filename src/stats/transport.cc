#include "stats/transport.h"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <tuple>
#include <utility>

#include "stats/fleet_wire.h"
#include "stats/wire_format.h"

namespace equihist::transport {
namespace {

std::uint64_t NowMicros() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Remaining budget against an absolute steady-clock deadline; 0 = spent.
std::uint64_t RemainingMicros(std::uint64_t deadline_micros) {
  const std::uint64_t now = NowMicros();
  return now >= deadline_micros ? 0 : deadline_micros - now;
}

// Sleeps in short slices so an injected delay can neither overshoot the
// caller's deadline nor pin a shutting-down server thread.
void SleepBounded(std::uint64_t micros, std::uint64_t deadline_micros,
                  const std::atomic<bool>* stop) {
  const std::uint64_t until =
      std::min(NowMicros() + micros,
               deadline_micros == 0 ? ~std::uint64_t{0} : deadline_micros);
  while (NowMicros() < until) {
    if (stop != nullptr && stop->load(std::memory_order_relaxed)) return;
    const std::uint64_t left = until - NowMicros();
    std::this_thread::sleep_for(
        std::chrono::microseconds(std::min<std::uint64_t>(left, 10'000)));
  }
}

}  // namespace

// -- Envelope ---------------------------------------------------------------

// payload := request_id [budget] checksum frame; message := len payload.
std::vector<std::uint8_t> EncodeEnvelope(std::uint64_t request_id,
                                         std::uint64_t budget_micros,
                                         bool include_budget,
                                         std::span<const std::uint8_t> frame) {
  std::vector<std::uint8_t> payload;
  payload.reserve(frame.size() + 24);
  wire::PutVarint(request_id, &payload);
  if (include_budget) wire::PutVarint(budget_micros, &payload);
  wire::PutVarint(ChecksumBytes(frame), &payload);
  payload.insert(payload.end(), frame.begin(), frame.end());
  std::vector<std::uint8_t> out;
  out.reserve(payload.size() + 4);
  wire::PutVarint(payload.size(), &out);
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

// Parses an envelope payload (everything after the length prefix). A
// checksum mismatch is NOT a parse error: the framing is intact and the
// stream stays usable, so the caller can answer with a typed rejection
// instead of tearing the connection down.
Result<DecodedEnvelope> DecodeEnvelopePayload(
    std::span<const std::uint8_t> payload, bool expect_budget) {
  wire::Reader reader(payload);
  DecodedEnvelope envelope;
  EQUIHIST_ASSIGN_OR_RETURN(envelope.request_id, reader.Varint());
  if (expect_budget) {
    EQUIHIST_ASSIGN_OR_RETURN(envelope.budget_micros, reader.Varint());
  }
  EQUIHIST_ASSIGN_OR_RETURN(const std::uint64_t checksum, reader.Varint());
  envelope.frame.assign(payload.begin() + static_cast<std::ptrdiff_t>(
                                              reader.position()),
                        payload.end());
  envelope.checksum_ok = ChecksumBytes(envelope.frame) == checksum;
  return envelope;
}

namespace {

// -- Bounded socket I/O -----------------------------------------------------
//
// Every operation is non-blocking + poll()-bounded: `deadline_micros` is
// an absolute steady-clock bound (0 = none), `stop` an optional early-out
// flag polled between slices. No call below can block unboundedly.

Status SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::Unavailable("fcntl(O_NONBLOCK) failed");
  }
  return Status::OK();
}

// Waits for `events` on `fd`. Polls in <= 50ms slices so `stop` stays
// responsive even with a far deadline.
Status PollFd(int fd, short events, std::uint64_t deadline_micros,
              const std::atomic<bool>* stop) {
  while (true) {
    if (stop != nullptr && stop->load(std::memory_order_relaxed)) {
      return Status::Unavailable("transport stopping");
    }
    std::uint64_t slice_ms = 50;
    if (deadline_micros != 0) {
      const std::uint64_t remaining = RemainingMicros(deadline_micros);
      if (remaining == 0) {
        return Status::DeadlineExceeded("transport deadline expired");
      }
      slice_ms = std::min<std::uint64_t>(slice_ms, remaining / 1000 + 1);
    }
    pollfd pfd{fd, events, 0};
    const int rc = poll(&pfd, 1, static_cast<int>(slice_ms));
    if (rc < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable("poll failed");
    }
    if (rc > 0) {
      if ((pfd.revents & (POLLERR | POLLNVAL)) != 0) {
        return Status::Unavailable("socket error");
      }
      return Status::OK();
    }
  }
}

Status SendAll(int fd, std::span<const std::uint8_t> bytes,
               std::uint64_t deadline_micros, const std::atomic<bool>* stop) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t rc = send(fd, bytes.data() + sent, bytes.size() - sent,
                            MSG_NOSIGNAL);
    if (rc > 0) {
      sent += static_cast<std::size_t>(rc);
      continue;
    }
    if (rc < 0 && errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) {
      return Status::Unavailable("send failed");
    }
    EQUIHIST_RETURN_IF_ERROR(PollFd(fd, POLLOUT, deadline_micros, stop));
  }
  return Status::OK();
}

// Exactly `n` bytes or an error; EOF surfaces as kUnavailable.
Status RecvExact(int fd, std::uint8_t* out, std::size_t n,
                 std::uint64_t deadline_micros,
                 const std::atomic<bool>* stop) {
  std::size_t received = 0;
  while (received < n) {
    const ssize_t rc = recv(fd, out + received, n - received, 0);
    if (rc > 0) {
      received += static_cast<std::size_t>(rc);
      continue;
    }
    if (rc == 0) return Status::Unavailable("peer closed the connection");
    if (errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) {
      return Status::Unavailable("recv failed");
    }
    EQUIHIST_RETURN_IF_ERROR(PollFd(fd, POLLIN, deadline_micros, stop));
  }
  return Status::OK();
}

// A varint read byte-at-a-time off the stream (at most 10 bytes).
Result<std::uint64_t> RecvVarint(int fd, std::uint64_t deadline_micros,
                                 const std::atomic<bool>* stop) {
  std::uint64_t value = 0;
  int shift = 0;
  for (int i = 0; i < 10; ++i) {
    std::uint8_t byte = 0;
    EQUIHIST_RETURN_IF_ERROR(RecvExact(fd, &byte, 1, deadline_micros, stop));
    value |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return value;
    shift += 7;
  }
  return Status::Unavailable("oversized varint on transport stream");
}

}  // namespace

// One whole envelope payload off the stream (length prefix consumed and
// validated against `max_frame_bytes`).
Result<std::vector<std::uint8_t>> RecvEnvelopePayload(
    int fd, std::size_t max_frame_bytes, std::uint64_t deadline_micros,
    const std::atomic<bool>* stop) {
  EQUIHIST_ASSIGN_OR_RETURN(const std::uint64_t length,
                            RecvVarint(fd, deadline_micros, stop));
  if (length == 0 || length > max_frame_bytes) {
    return Status::Unavailable("transport envelope length out of bounds");
  }
  std::vector<std::uint8_t> payload(static_cast<std::size_t>(length));
  EQUIHIST_RETURN_IF_ERROR(
      RecvExact(fd, payload.data(), payload.size(), deadline_micros, stop));
  return payload;
}

std::uint64_t ChecksumBytes(std::span<const std::uint8_t> bytes) {
  // FNV-1a 64: cheap, stateless, and plenty for catching injected or real
  // single/multi-byte wire damage (this is an integrity check against
  // accident, not an authenticator).
  std::uint64_t hash = 0xCBF29CE484222325ULL;
  for (const std::uint8_t byte : bytes) {
    hash ^= byte;
    hash *= 0x100000001B3ULL;
  }
  return hash;
}

// -- InProcessTransport -----------------------------------------------------

InProcessTransport::InProcessTransport(StatisticsFleet* fleet,
                                       const Table* table,
                                       LinkFaultInjector* injector,
                                       std::uint64_t connection_id)
    : fleet_(fleet),
      table_(table),
      injector_(injector),
      connection_id_(connection_id) {}

Result<std::vector<std::uint8_t>> InProcessTransport::RoundTrip(
    std::span<const std::uint8_t> frame, std::uint64_t budget_micros) {
  if (budget_micros == 0) {
    return Status::DeadlineExceeded("transport budget exhausted");
  }
  const std::uint64_t deadline = NowMicros() + budget_micros;
  std::vector<std::uint8_t> request(frame.begin(), frame.end());
  if (injector_ != nullptr) {
    if (injector_->Partitioned(connection_id_)) {
      injector_->RecordPartitionHit();
      // A severed link never heals: mark it broken so pooling layers
      // discard it and dial a fresh connection instead of retrying into
      // the partition forever.
      broken_ = true;
      return Status::Unavailable("link partitioned");
    }
    const LinkFaultPlan plan = injector_->Decide(
        connection_id_, frames_sent_, LinkDirection::kSend);
    const std::uint64_t send_index = frames_sent_++;
    if (plan.delay_micros > 0) {
      SleepBounded(plan.delay_micros, deadline, nullptr);
      if (RemainingMicros(deadline) == 0) {
        return Status::DeadlineExceeded("transport budget exhausted");
      }
    }
    switch (plan.kind) {
      case LinkFaultKind::kNone:
        break;
      case LinkFaultKind::kDrop:
        // With no wire to wait on, "never answered" and "link errored"
        // are indistinguishable in-process; fail fast with the transient
        // code the retry layer understands.
        return Status::Unavailable("request dropped on the link");
      case LinkFaultKind::kDelay:
        break;  // handled above
      case LinkFaultKind::kTruncate:
        injector_->ApplyTruncate(connection_id_, send_index, request);
        break;
      case LinkFaultKind::kCorrupt:
        injector_->ApplyCorrupt(connection_id_, send_index, request);
        break;
      case LinkFaultKind::kDuplicate: {
        // Serve the duplicate first; its response is discarded, exactly
        // like a socket client discarding a stale request id.
        std::ignore = fleet_->ServeFrame(request, *table_);
        break;
      }
    }
  }
  Result<std::vector<std::uint8_t>> response =
      fleet_->ServeFrame(request, *table_);
  if (!response.ok()) {
    if (injector_ != nullptr &&
        response.status().code() == StatusCode::kInvalidArgument) {
      // A frame this transport mangled decodes as malformed on the other
      // side; report it as the transient wire damage it is.
      return Status::Unavailable("frame damaged on the link");
    }
    return response.status();
  }
  std::vector<std::uint8_t> reply = std::move(response).value();
  if (injector_ != nullptr) {
    const LinkFaultPlan plan = injector_->Decide(
        connection_id_, frames_received_, LinkDirection::kReceive);
    const std::uint64_t receive_index = frames_received_++;
    if (plan.delay_micros > 0) {
      SleepBounded(plan.delay_micros, deadline, nullptr);
      if (RemainingMicros(deadline) == 0) {
        return Status::DeadlineExceeded("transport budget exhausted");
      }
    }
    switch (plan.kind) {
      case LinkFaultKind::kNone:
      case LinkFaultKind::kDelay:
      case LinkFaultKind::kDuplicate:  // second copy is simply discarded
        break;
      case LinkFaultKind::kDrop:
        return Status::Unavailable("response dropped on the link");
      case LinkFaultKind::kTruncate:
        injector_->ApplyTruncate(connection_id_, receive_index, reply);
        return Status::Unavailable("response truncated on the link");
      case LinkFaultKind::kCorrupt:
        injector_->ApplyCorrupt(connection_id_, receive_index, reply);
        return Status::Unavailable("response corrupted on the link");
    }
  }
  return reply;
}

// -- SocketTransport --------------------------------------------------------

SocketTransport::SocketTransport(int fd, LinkFaultInjector* injector,
                                 std::uint64_t connection_id)
    : fd_(fd), injector_(injector), connection_id_(connection_id) {}

SocketTransport::~SocketTransport() {
  if (fd_ >= 0) close(fd_);
}

Result<std::unique_ptr<SocketTransport>> SocketTransport::Connect(
    const Endpoint& endpoint, std::uint64_t budget_micros,
    LinkFaultInjector* injector, std::uint64_t connection_id) {
  if (budget_micros == 0) {
    return Status::DeadlineExceeded("transport budget exhausted");
  }
  if (injector != nullptr && injector->Partitioned(connection_id)) {
    injector->RecordPartitionHit();
    return Status::Unavailable("link partitioned");
  }
  const std::uint64_t deadline = NowMicros() + budget_micros;
  const int fd = socket(
      endpoint.kind == Endpoint::Kind::kUnix ? AF_UNIX : AF_INET,
      SOCK_STREAM, 0);
  if (fd < 0) return Status::Unavailable("socket() failed");
  Status status = SetNonBlocking(fd);
  if (status.ok()) {
    int rc = 0;
    if (endpoint.kind == Endpoint::Kind::kUnix) {
      sockaddr_un addr{};
      addr.sun_family = AF_UNIX;
      if (endpoint.path.size() >= sizeof(addr.sun_path)) {
        close(fd);
        return Status::InvalidArgument("unix socket path too long");
      }
      std::memcpy(addr.sun_path, endpoint.path.c_str(),
                  endpoint.path.size() + 1);
      rc = connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr));
    } else {
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_port = htons(endpoint.port);
      addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
      rc = connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr));
    }
    if (rc < 0 && errno == EINPROGRESS) {
      status = PollFd(fd, POLLOUT, deadline, nullptr);
      if (status.ok()) {
        int so_error = 0;
        socklen_t len = sizeof(so_error);
        if (getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len) < 0 ||
            so_error != 0) {
          status = Status::Unavailable("connect failed");
        }
      }
    } else if (rc < 0) {
      status = Status::Unavailable("connect failed");
    }
  }
  if (!status.ok()) {
    close(fd);
    return status;
  }
  return std::unique_ptr<SocketTransport>(
      new SocketTransport(fd, injector, connection_id));
}

Result<std::vector<std::uint8_t>> SocketTransport::RoundTrip(
    std::span<const std::uint8_t> frame, std::uint64_t budget_micros) {
  MutexLock lock(mu_);
  return RoundTripLocked(frame, budget_micros);
}

Result<std::vector<std::uint8_t>> SocketTransport::RoundTripLocked(
    std::span<const std::uint8_t> frame, std::uint64_t budget_micros) {
  if (broken_.load(std::memory_order_relaxed)) {
    return Status::Unavailable("transport is broken");
  }
  if (budget_micros == 0) {
    return Status::DeadlineExceeded("transport budget exhausted");
  }
  if (injector_ != nullptr && injector_->Partitioned(connection_id_)) {
    injector_->RecordPartitionHit();
    // Severed for good: broken so the pool discards this link and the
    // retry layer dials a fresh connection (new connection id, which the
    // injector may leave unpartitioned — that is how recovery happens).
    broken_.store(true, std::memory_order_relaxed);
    return Status::Unavailable("link partitioned");
  }
  const std::uint64_t deadline = NowMicros() + budget_micros;
  const std::uint64_t request_id = next_request_id_++;

  // -- Send leg -------------------------------------------------------------
  bool sent_anything = true;
  {
    std::vector<std::uint8_t> envelope = EncodeEnvelope(
        request_id, budget_micros, /*include_budget=*/true, frame);
    LinkFaultPlan plan{};
    std::uint64_t send_index = 0;
    if (injector_ != nullptr) {
      send_index = send_index_++;
      plan = injector_->Decide(connection_id_, send_index,
                               LinkDirection::kSend);
    }
    if (plan.delay_micros > 0) {
      SleepBounded(plan.delay_micros, deadline, nullptr);
      if (RemainingMicros(deadline) == 0) {
        // Nothing hit the wire; the stream is still in sync.
        return Status::DeadlineExceeded("transport budget exhausted");
      }
    }
    switch (plan.kind) {
      case LinkFaultKind::kNone:
      case LinkFaultKind::kDelay:
        break;
      case LinkFaultKind::kDrop:
        sent_anything = false;  // wait for an answer that cannot come
        break;
      case LinkFaultKind::kTruncate:
        injector_->ApplyTruncate(connection_id_, send_index, envelope);
        break;
      case LinkFaultKind::kCorrupt:
        injector_->ApplyCorrupt(connection_id_, send_index, envelope);
        break;
      case LinkFaultKind::kDuplicate:
        break;  // sent twice below
    }
    if (sent_anything && !envelope.empty()) {
      Status status = SendAll(fd_, envelope, deadline, nullptr);
      if (status.ok() && plan.kind == LinkFaultKind::kDuplicate) {
        status = SendAll(fd_, envelope, deadline, nullptr);
      }
      if (!status.ok()) {
        broken_.store(true, std::memory_order_relaxed);
        return status;
      }
    }
  }

  // -- Receive leg ----------------------------------------------------------
  while (true) {
    Result<std::vector<std::uint8_t>> payload =
        RecvEnvelopePayload(fd_, 1 << 20, deadline, nullptr);
    if (!payload.ok()) {
      // Timeout or stream failure mid-message: the link may still deliver
      // a stale reply later, so it must never be reused.
      broken_.store(true, std::memory_order_relaxed);
      return payload.status();
    }
    Result<DecodedEnvelope> decoded =
        DecodeEnvelopePayload(*payload, /*expect_budget=*/false);
    if (!decoded.ok()) {
      broken_.store(true, std::memory_order_relaxed);
      return Status::Unavailable("malformed transport envelope");
    }
    DecodedEnvelope envelope = std::move(decoded).value();
    LinkFaultPlan plan{};
    std::uint64_t receive_index = 0;
    if (injector_ != nullptr) {
      receive_index = receive_index_++;
      plan = injector_->Decide(connection_id_, receive_index,
                               LinkDirection::kReceive);
    }
    if (plan.delay_micros > 0) {
      SleepBounded(plan.delay_micros, deadline, nullptr);
      if (RemainingMicros(deadline) == 0) {
        broken_.store(true, std::memory_order_relaxed);
        return Status::DeadlineExceeded("transport budget exhausted");
      }
    }
    switch (plan.kind) {
      case LinkFaultKind::kNone:
      case LinkFaultKind::kDelay:
      case LinkFaultKind::kDuplicate:  // the extra copy never materializes
        break;
      case LinkFaultKind::kDrop:
        continue;  // response vanished; keep waiting out the budget
      case LinkFaultKind::kTruncate:
        // Losing a tail mid-stream desyncs the framing for good.
        broken_.store(true, std::memory_order_relaxed);
        return Status::Unavailable("response truncated on the link");
      case LinkFaultKind::kCorrupt:
        injector_->ApplyCorrupt(connection_id_, receive_index,
                                envelope.frame);
        envelope.checksum_ok = false;
        break;
    }
    if (!envelope.checksum_ok) {
      // Framing survived, payload did not: transient wire damage. The
      // stream stays in sync, so the link remains usable.
      return Status::Unavailable("transport checksum mismatch");
    }
    if (envelope.request_id < request_id) continue;  // stale / duplicate
    if (envelope.request_id > request_id) {
      broken_.store(true, std::memory_order_relaxed);
      return Status::Unavailable("transport stream desynchronized");
    }
    return std::move(envelope.frame);
  }
}

// -- SocketTransportServer --------------------------------------------------

struct SocketTransportServer::Connection {
  int fd = -1;
  std::uint64_t id = 0;
  Mutex write_mu{lockrank::kConnectionWrite};
  std::atomic<bool> done{false};  // reader thread exited
  std::thread reader;
  std::uint64_t serve_index = 0;  // frames read, reader thread only
};

SocketTransportServer::SocketTransportServer(StatisticsFleet* fleet,
                                             const Table* table,
                                             Options options)
    : fleet_(fleet), table_(table), options_(std::move(options)) {}

SocketTransportServer::~SocketTransportServer() { Stop(); }

Status SocketTransportServer::Start() {
  if (started_.exchange(true)) {
    return Status::FailedPrecondition("server already started");
  }
  if (options_.workers == 0) options_.workers = 1;
  if (options_.queue_capacity == 0) options_.queue_capacity = 1;
  if (options_.endpoint.kind == Endpoint::Kind::kUnix) {
    listen_fd_ = socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) return Status::Unavailable("socket() failed");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (options_.endpoint.path.size() >= sizeof(addr.sun_path)) {
      return Status::InvalidArgument("unix socket path too long");
    }
    std::memcpy(addr.sun_path, options_.endpoint.path.c_str(),
                options_.endpoint.path.size() + 1);
    unlink(options_.endpoint.path.c_str());  // clear a stale socket file
    if (bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) < 0) {
      return Status::Unavailable("bind failed");
    }
  } else {
    listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) return Status::Unavailable("socket() failed");
    const int one = 1;
    setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(options_.endpoint.port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) < 0) {
      return Status::Unavailable("bind failed");
    }
    if (options_.endpoint.port == 0) {
      sockaddr_in bound{};
      socklen_t len = sizeof(bound);
      if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                      &len) < 0) {
        return Status::Unavailable("getsockname failed");
      }
      options_.endpoint.port = ntohs(bound.sin_port);
    }
  }
  EQUIHIST_RETURN_IF_ERROR(SetNonBlocking(listen_fd_));
  if (listen(listen_fd_, 16) < 0) {
    return Status::Unavailable("listen failed");
  }
  if (pipe(wake_pipe_) < 0) {
    return Status::Unavailable("pipe failed");
  }
  std::ignore = SetNonBlocking(wake_pipe_[0]);
  accept_thread_ = std::thread([this]() { AcceptLoop(); });
  workers_.reserve(options_.workers);
  for (std::size_t i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
  return Status::OK();
}

void SocketTransportServer::Stop() {
  if (!started_.load()) return;
  std::vector<std::shared_ptr<Connection>> connections;
  {
    MutexLock lock(mu_);
    if (stopping_) return;
    stopping_ = true;
    connections.swap(connections_);
    work_cv_.NotifyAll();
  }
  if (wake_pipe_[1] >= 0) {
    const char byte = 'x';
    std::ignore = write(wake_pipe_[1], &byte, 1);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  for (const auto& connection : connections) {
    shutdown(connection->fd, SHUT_RDWR);
  }
  for (const auto& connection : connections) {
    if (connection->reader.joinable()) connection->reader.join();
    close(connection->fd);
  }
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  if (listen_fd_ >= 0) {
    close(listen_fd_);
    listen_fd_ = -1;
  }
  for (int& fd : wake_pipe_) {
    if (fd >= 0) {
      close(fd);
      fd = -1;
    }
  }
  if (options_.endpoint.kind == Endpoint::Kind::kUnix) {
    unlink(options_.endpoint.path.c_str());
  }
}

void SocketTransportServer::AcceptLoop() {
  while (true) {
    {
      MutexLock lock(mu_);
      if (stopping_) return;
      // Reap connections whose reader already exited, so dead links never
      // count against max_connections.
      for (auto it = connections_.begin(); it != connections_.end();) {
        if ((*it)->done.load(std::memory_order_relaxed)) {
          if ((*it)->reader.joinable()) (*it)->reader.join();
          close((*it)->fd);
          it = connections_.erase(it);
        } else {
          ++it;
        }
      }
    }
    pollfd pfds[2] = {{listen_fd_, POLLIN, 0}, {wake_pipe_[0], POLLIN, 0}};
    const int rc = poll(pfds, 2, 100);
    if (rc < 0 && errno != EINTR) return;
    if (rc <= 0 || (pfds[0].revents & POLLIN) == 0) continue;
    const int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    if (!SetNonBlocking(fd).ok()) {
      close(fd);
      continue;
    }
    auto connection = std::make_shared<Connection>();
    connection->fd = fd;
    {
      MutexLock lock(mu_);
      if (stopping_ || connections_.size() >= options_.max_connections) {
        // Over the cap (or racing shutdown): close instead of queueing an
        // unbounded backlog. The client sees a dead link and fails over.
        close(fd);
        continue;
      }
      connection->id = next_connection_id_++;
      connections_.push_back(connection);
    }
    if (options_.metrics != nullptr) {
      options_.metrics->Increment(metrics::Counter::kServerConnections);
      options_.metrics->GaugeAdd(metrics::Gauge::kServerActiveConnections, 1);
    }
    connection->reader =
        std::thread([this, connection]() { ReaderLoop(connection); });
  }
}

void SocketTransportServer::ReaderLoop(std::shared_ptr<Connection> connection) {
  // The server must stay responsive to shutdown while a connection idles,
  // so reads run in 100ms slices, re-checking the stopping flag between
  // them rather than holding any deadline (clients bound their own waits).
  while (true) {
    {
      MutexLock lock(mu_);
      if (stopping_) break;
    }
    // Idle slice: wait for the first byte only, so a timeout here can
    // never fire mid-envelope and desync the stream.
    const Status ready =
        PollFd(connection->fd, POLLIN, NowMicros() + 100'000, nullptr);
    if (!ready.ok()) {
      if (ready.code() == StatusCode::kDeadlineExceeded) continue;
      break;
    }
    // A message has begun; read it to completion. The bound exists so a
    // peer that stalls mid-envelope (e.g. an injected truncation) parks
    // this reader for at most 30s — Stop()'s shutdown() unblocks it
    // earlier either way.
    Result<std::vector<std::uint8_t>> payload = RecvEnvelopePayload(
        connection->fd, options_.max_frame_bytes, NowMicros() + 30'000'000,
        nullptr);
    if (!payload.ok()) {
      break;  // EOF, hostile length, or a desynced stream: drop the link
    }
    Result<DecodedEnvelope> decoded =
        DecodeEnvelopePayload(*payload, /*expect_budget=*/true);
    if (!decoded.ok()) break;
    DecodedEnvelope envelope = std::move(decoded).value();
    const std::uint64_t serve_index = connection->serve_index++;
    if (!envelope.checksum_ok) {
      // The framing is intact, so the stream stays usable; answer with
      // the transient-damage rejection the client retries.
      RejectWith(connection, envelope.request_id,
                 Status::Unavailable("transport checksum mismatch"),
                 metrics::Counter::kServerRejects);
      continue;
    }
    WorkItem item;
    item.connection = connection;
    item.frame = std::move(envelope.frame);
    item.request_id = envelope.request_id;
    item.enqueued_micros = NowMicros();
    item.deadline_micros = item.enqueued_micros + envelope.budget_micros;
    // Stash the per-connection frame index for the serve-direction chaos
    // decision; request ids restart per connection so they cannot key it.
    item.serve_index = serve_index;
    EnqueueWork(std::move(item));
  }
  connection->done.store(true, std::memory_order_relaxed);
  if (options_.metrics != nullptr) {
    options_.metrics->GaugeAdd(metrics::Gauge::kServerActiveConnections, -1);
  }
}

void SocketTransportServer::EnqueueWork(WorkItem item) {
  WorkItem shed;
  bool have_shed = false;
  {
    MutexLock lock(mu_);
    if (stopping_) return;
    queue_.push_back(std::move(item));
    if (queue_.size() > options_.queue_capacity) {
      // Shed the entry with the OLDEST remaining deadline: it is the one
      // most likely already dead on arrival, and dropping it preserves
      // the most future work. The incoming item competes like any other.
      auto oldest = queue_.begin();
      for (auto it = std::next(queue_.begin()); it != queue_.end(); ++it) {
        if (it->deadline_micros < oldest->deadline_micros) oldest = it;
      }
      shed = std::move(*oldest);
      queue_.erase(oldest);
      have_shed = true;
    }
    if (options_.metrics != nullptr) {
      options_.metrics->GaugeSet(metrics::Gauge::kServerQueueDepth,
                                 queue_.size());
    }
    work_cv_.NotifyOne();
  }
  if (have_shed) {
    if (options_.metrics != nullptr) {
      options_.metrics->Increment(metrics::Counter::kServerShedDrops);
    }
    RejectWith(shed.connection, shed.request_id,
               Status::ResourceExhausted("server work queue full"),
               metrics::Counter::kServerRejects);
  }
}

void SocketTransportServer::WorkerLoop() {
  while (true) {
    WorkItem item;
    {
      MutexLock lock(mu_);
      work_cv_.Wait(mu_, [this]() REQUIRES(mu_) {
        return stopping_ || !queue_.empty();
      });
      if (stopping_) return;
      item = std::move(queue_.front());
      queue_.pop_front();
      if (options_.metrics != nullptr) {
        options_.metrics->GaugeSet(metrics::Gauge::kServerQueueDepth,
                                   queue_.size());
      }
    }
    const std::uint64_t now = NowMicros();
    if (options_.metrics != nullptr) {
      options_.metrics->Observe(metrics::Hist::kServerQueueWaitMicros,
                                now - item.enqueued_micros);
    }
    // Admission: serving a request whose client already gave up burns
    // worker time nobody benefits from — answer with the typed expiry.
    if (now >= item.deadline_micros) {
      if (options_.metrics != nullptr) {
        options_.metrics->Increment(metrics::Counter::kServerExpiredDrops);
      }
      RejectWith(item.connection, item.request_id,
                 Status::DeadlineExceeded("deadline expired before serving"),
                 metrics::Counter::kServerRejects);
      continue;
    }
    if (options_.injector != nullptr) {
      const LinkFaultPlan plan = options_.injector->Decide(
          item.connection->id, item.serve_index, LinkDirection::kServe);
      if (plan.delay_micros > 0) {
        // A slow handler: sleeps through the client's deadline if the
        // spec says so (sliced so shutdown stays prompt).
        bool stop_now = false;
        const std::uint64_t until = NowMicros() + plan.delay_micros;
        while (NowMicros() < until && !stop_now) {
          std::this_thread::sleep_for(std::chrono::milliseconds(10));
          MutexLock lock(mu_);
          stop_now = stopping_;
        }
      }
      if (plan.kind == LinkFaultKind::kDrop) {
        continue;  // a wedged handler: never replies at all
      }
    }
    Result<std::vector<std::uint8_t>> response =
        fleet_->ServeFrame(item.frame, *table_);
    if (!response.ok()) {
      RejectWith(item.connection, item.request_id, response.status(),
                 metrics::Counter::kServerRejects);
      continue;
    }
    if (options_.metrics != nullptr) {
      options_.metrics->Increment(metrics::Counter::kServerFramesServed);
    }
    Reply(item.connection, item.request_id, *response);
  }
}

void SocketTransportServer::Reply(
    const std::shared_ptr<Connection>& connection, std::uint64_t request_id,
    std::span<const std::uint8_t> frame) {
  const std::vector<std::uint8_t> envelope =
      EncodeEnvelope(request_id, 0, /*include_budget=*/false, frame);
  MutexLock lock(connection->write_mu);
  // A stuck client must not pin a worker: bound the write and abandon the
  // link on failure (the client's own deadline covers the loss).
  if (!SendAll(connection->fd, envelope, NowMicros() + 1'000'000, nullptr)
           .ok()) {
    shutdown(connection->fd, SHUT_RDWR);
  }
}

void SocketTransportServer::RejectWith(
    const std::shared_ptr<Connection>& connection, std::uint64_t request_id,
    const Status& error, metrics::Counter counter) {
  if (options_.metrics != nullptr) {
    options_.metrics->Increment(counter);
  }
  const std::vector<std::uint8_t> frame = fleetwire::Encode(
      fleetwire::RejectionFrame{error.code(), error.message()});
  Reply(connection, request_id, frame);
}

}  // namespace equihist::transport
