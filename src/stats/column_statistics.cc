#include "stats/column_statistics.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <sstream>

#include "common/parallel_sort.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "core/bounds.h"
#include "core/density.h"
#include "core/histogram_builder.h"
#include "core/range_estimator.h"
#include "distinct/estimators.h"
#include "distinct/frequency_profile.h"
#include "sampling/block_sampler.h"
#include "sampling/reservoir.h"
#include "sampling/row_sampler.h"
#include "stats/histogram_backends.h"
#include "stats/incremental_backend.h"
#include "storage/scan.h"

namespace equihist {
namespace {

// Values whose multiplicity in `sorted` exceeds the ideal bucket size
// become pinned heavy hitters, counts scaled by `scale` (1.0 for a full
// scan).
std::vector<CompressedHistogram::Singleton> CollectHeavyHitters(
    std::span<const Value> sorted, std::uint64_t buckets, double scale) {
  std::vector<CompressedHistogram::Singleton> hitters;
  const double ideal =
      static_cast<double>(sorted.size()) / static_cast<double>(buckets);
  for (std::size_t i = 0; i < sorted.size();) {
    std::size_t j = i;
    while (j < sorted.size() && sorted[j] == sorted[i]) ++j;
    if (static_cast<double>(j - i) > ideal) {
      const auto scaled = static_cast<std::uint64_t>(
          std::llround(static_cast<double>(j - i) * scale));
      hitters.push_back(CompressedHistogram::Singleton{
          sorted[i], std::max<std::uint64_t>(scaled, 1)});
    }
    i = j;
  }
  return hitters;
}

// Estimated distinct count over a sorted sample: the paper's estimator for
// a proper sample, the exact run count for a full scan.
Result<double> EstimateDistinct(std::span<const Value> sorted, bool sampled,
                                std::uint64_t population) {
  if (sampled) {
    return PaperEstimator(FrequencyProfile::FromSorted(sorted), population);
  }
  std::uint64_t distinct = 0;
  for (std::size_t i = 0; i < sorted.size();) {
    std::size_t j = i;
    while (j < sorted.size() && sorted[j] == sorted[i]) ++j;
    ++distinct;
    i = j;
  }
  return static_cast<double>(distinct);
}

// The incremental-equi-depth build (DESIGN.md §15): a paper-§4 block
// sample sized for both the Theorem 4 budget and the reservoir capacity
// seeds a BackingReservoir; the published histogram is built from exactly
// what the reservoir holds, so the model and its backing sample agree at
// birth (the differential-test contract).
Result<ColumnStatistics> BuildIncrementalStatistics(
    const Table& table, const BackendBuildOptions& options, ThreadPool* pool) {
  const std::uint64_t n = table.tuple_count();
  if (n == 0) {
    return Status::FailedPrecondition("table is empty");
  }
  const std::uint64_t capacity =
      std::max(options.reservoir_capacity, options.buckets);

  IoStats io;
  std::vector<Value> values;
  if (options.prefer_sampling) {
    EQUIHIST_ASSIGN_OR_RETURN(
        const std::uint64_t deviation,
        DeviationSampleSize(n, options.buckets, options.f, options.gamma));
    const std::uint64_t wanted = std::min(std::max(deviation, capacity), n);
    // Without-replacement page permutation: transient faults retried,
    // permanently unreadable pages skipped and replaced, a skip total over
    // the fault budget fails the build with a typed error the degraded
    // serving layer absorbs.
    IncrementalBlockSampler sampler(&table, options.seed, pool);
    sampler.set_retry_policy(options.retry);
    const std::uint64_t per_page =
        std::max<std::uint64_t>(table.tuples_per_page(), 1);
    while (values.size() < wanted) {
      const std::uint64_t need = wanted - values.size();
      std::vector<Value> batch =
          sampler.NextBatch((need + per_page - 1) / per_page, &io);
      if (batch.empty()) break;  // page permutation exhausted
      values.insert(values.end(), batch.begin(), batch.end());
      if (sampler.pages_skipped() > options.max_skipped_blocks) {
        return Status::DataLoss(
            "block sampling skipped more pages than the fault budget");
      }
    }
    if (values.empty()) {
      return Status::DataLoss("no readable pages to seed the reservoir from");
    }
  } else {
    EQUIHIST_ASSIGN_OR_RETURN(
        values, FullScanChecked(table, &io, pool, options.retry));
  }
  ParallelSort(values, pool);

  EQUIHIST_ASSIGN_OR_RETURN(
      BackingReservoir reservoir,
      BackingReservoir::Create(capacity, options.seed));
  EQUIHIST_RETURN_IF_ERROR(reservoir.SeedFromSample(values, n));
  EQUIHIST_ASSIGN_OR_RETURN(
      HistogramModelPtr model,
      MakeIncrementalModelFromReservoir(std::move(reservoir),
                                        options.buckets));

  const double scale =
      static_cast<double>(n) / static_cast<double>(values.size());
  ColumnStatistics stats;
  stats.model = std::move(model);
  stats.density = ComputeDensity(values);
  EQUIHIST_ASSIGN_OR_RETURN(
      stats.distinct_estimate,
      EstimateDistinct(values, options.prefer_sampling, n));
  stats.row_count = n;
  stats.from_full_scan = !options.prefer_sampling;
  stats.sample_size = values.size();
  stats.build_cost = io;
  stats.heavy_hitters = CollectHeavyHitters(values, options.buckets, scale);
  return stats;
}

}  // namespace

void ColumnStatistics::SetEquiHeight(Histogram histogram) {
  model = std::make_shared<EquiHeightModel>(std::move(histogram));
}

const Histogram* ColumnStatistics::equi_height() const {
  const auto* equi = dynamic_cast<const EquiHeightModel*>(model.get());
  return equi != nullptr ? &equi->histogram() : nullptr;
}

const CompiledEstimator* ColumnStatistics::compiled() const {
  const auto* equi = dynamic_cast<const EquiHeightModel*>(model.get());
  return equi != nullptr ? &equi->compiled() : nullptr;
}

const Histogram& ColumnStatistics::histogram() const {
  const Histogram* equi = equi_height();
  if (equi == nullptr) {
    // The assertive accessor exists for equi-height-only code paths; a
    // wrong-family call is a programming error, not a recoverable state.
    std::abort();
  }
  return *equi;
}

double ColumnStatistics::EstimateRangeCount(const RangeQuery& query) const {
  if (model == nullptr) return 0.0;
  return model->EstimateRangeCount(query);
}

void ColumnStatistics::EstimateRangeCounts(std::span<const RangeQuery> queries,
                                           std::span<double> out,
                                           ThreadPool* pool) const {
  if (model == nullptr) {
    std::fill(out.begin(), out.begin() + queries.size(), 0.0);
    return;
  }
  model->EstimateRangeCounts(queries, out, pool);
}

double ColumnStatistics::EstimateEqualityCount(Value value) const {
  // Frequent values are pinned exactly (the compressed-histogram singleton
  // list collected at build time).
  const auto it = std::lower_bound(
      heavy_hitters.begin(), heavy_hitters.end(), value,
      [](const CompressedHistogram::Singleton& s, Value v) {
        return s.value < v;
      });
  if (it != heavy_hitters.end() && it->value == value) {
    return static_cast<double>(it->count);
  }
  // Out-of-domain values match nothing.
  if (model != nullptr &&
      (value <= model->lower_fence() || value > model->upper_fence())) {
    return 0.0;
  }
  // Infrequent value: average multiplicity among the non-heavy values,
  // n_light / d_light — the density-style fallback an optimizer uses when
  // the histogram cannot resolve the value.
  double heavy_mass = 0.0;
  for (const auto& s : heavy_hitters) heavy_mass += static_cast<double>(s.count);
  const double light_mass =
      std::max(static_cast<double>(row_count) - heavy_mass, 0.0);
  const double light_distinct = std::max(
      distinct_estimate - static_cast<double>(heavy_hitters.size()), 1.0);
  return std::max(light_mass / light_distinct, 0.0);
}

double ColumnStatistics::EstimateDistinctFraction() const {
  if (row_count == 0) return 0.0;
  return distinct_estimate / static_cast<double>(row_count);
}

std::string ColumnStatistics::ToString() const {
  std::ostringstream os;
  os << "ColumnStatistics{rows=" << FormatWithThousands(row_count)
     << ", " << (model != nullptr ? model->Describe() : "no histogram")
     << ", density=" << FormatFixed(density, 6)
     << ", distinct~=" << FormatCount(distinct_estimate)
     << ", heavy=" << heavy_hitters.size()
     << ", built from " << (from_full_scan ? "full scan" : "sample")
     << " of " << FormatWithThousands(sample_size) << " tuples ("
     << FormatWithThousands(build_cost.pages_read) << " pages)}";
  return os.str();
}

Result<ColumnStatistics> BuildStatisticsFullScan(const Table& table,
                                                 std::uint64_t buckets,
                                                 ThreadPool* pool) {
  IoStats io;
  // Fault-aware scan: transient faults retried, permanent ones surface as
  // typed errors the StatisticsManager's degraded-serving layer absorbs.
  EQUIHIST_ASSIGN_OR_RETURN(std::vector<Value> values,
                            FullScanChecked(table, &io, pool));
  // Pre-sort in parallel; the ValueSet constructor then detects sorted
  // input and skips its own sequential sort.
  ParallelSort(values, pool);
  const ValueSet data(std::move(values));
  if (data.empty()) {
    return Status::FailedPrecondition("table is empty");
  }
  EQUIHIST_ASSIGN_OR_RETURN(Histogram histogram,
                            BuildPerfectHistogram(data, buckets, pool));

  ColumnStatistics stats;
  stats.SetEquiHeight(std::move(histogram));
  stats.density = ComputeDensity(data.sorted_values());
  stats.distinct_estimate = static_cast<double>(data.DistinctCount());
  stats.row_count = data.size();
  stats.from_full_scan = true;
  stats.sample_size = data.size();
  stats.build_cost = io;

  // Exact heavy hitters: multiplicity above the ideal bucket size.
  stats.heavy_hitters =
      CollectHeavyHitters(data.sorted_values(), buckets, /*scale=*/1.0);
  return stats;
}

Result<ColumnStatistics> BuildStatisticsSampled(const Table& table,
                                                const CvbOptions& options,
                                                ThreadPool* pool) {
  EQUIHIST_ASSIGN_OR_RETURN(CvbResult result, RunCvb(table, options, pool));
  EQUIHIST_ASSIGN_OR_RETURN(
      const double distinct,
      PaperEstimator(result.sample_profile, table.tuple_count()));

  ColumnStatistics stats;
  stats.SetEquiHeight(std::move(result.histogram));
  stats.density = result.density_estimate;
  stats.distinct_estimate = distinct;
  stats.row_count = table.tuple_count();
  stats.from_full_scan = false;
  stats.sample_size = result.tuples_sampled;
  stats.build_cost = result.io;
  stats.heavy_hitters = std::move(result.heavy_hitters);
  return stats;
}

Result<ColumnStatistics> BuildStatisticsWithBackend(
    const Table& table, const BackendBuildOptions& options, ThreadPool* pool) {
  if (options.backend == HistogramBackendId::kEquiHeight) {
    // The paper's own pipeline, untouched: CVB for sampled builds, the
    // exact sort for full scans.
    if (!options.prefer_sampling) {
      return BuildStatisticsFullScan(table, options.buckets, pool);
    }
    CvbOptions cvb;
    cvb.k = options.buckets;
    cvb.f = options.f;
    cvb.gamma = options.gamma;
    cvb.seed = options.seed;
    cvb.threads = 1;  // the caller's pool is passed in explicitly
    cvb.retry = options.retry;
    cvb.max_skipped_blocks = options.max_skipped_blocks;
    return BuildStatisticsSampled(table, cvb, pool);
  }
  if (options.backend == HistogramBackendId::kIncrementalEquiDepth) {
    // The §4 block-sample build that seeds the backing reservoir; the
    // generic row-sample path below cannot carry the reservoir out.
    return BuildIncrementalStatistics(table, options, pool);
  }

  EQUIHIST_ASSIGN_OR_RETURN(
      const HistogramBackendRegistry::Backend backend,
      HistogramBackendRegistry::Global().Find(options.backend));
  const std::uint64_t n = table.tuple_count();
  if (n == 0) {
    return Status::FailedPrecondition("table is empty");
  }

  IoStats io;
  std::vector<Value> values;
  if (options.prefer_sampling) {
    EQUIHIST_ASSIGN_OR_RETURN(
        const std::uint64_t wanted,
        DeviationSampleSize(n, options.buckets, options.f, options.gamma));
    Rng rng(options.seed);
    EQUIHIST_ASSIGN_OR_RETURN(
        values, SampleRowsFromTable(table, std::min(wanted, n), rng, &io,
                                    options.retry));
  } else {
    EQUIHIST_ASSIGN_OR_RETURN(
        values, FullScanChecked(table, &io, pool, options.retry));
  }
  ParallelSort(values, pool);

  EQUIHIST_ASSIGN_OR_RETURN(HistogramModelPtr model,
                            backend.build_from_sample(values, options.buckets,
                                                      n));
  const double scale =
      static_cast<double>(n) / static_cast<double>(values.size());

  ColumnStatistics stats;
  stats.model = std::move(model);
  stats.density = ComputeDensity(values);
  if (options.prefer_sampling) {
    EQUIHIST_ASSIGN_OR_RETURN(
        stats.distinct_estimate,
        PaperEstimator(FrequencyProfile::FromSorted(values), n));
  } else {
    std::uint64_t distinct = 0;
    for (std::size_t i = 0; i < values.size();) {
      std::size_t j = i;
      while (j < values.size() && values[j] == values[i]) ++j;
      ++distinct;
      i = j;
    }
    stats.distinct_estimate = static_cast<double>(distinct);
  }
  stats.row_count = n;
  stats.from_full_scan = !options.prefer_sampling;
  stats.sample_size = values.size();
  stats.build_cost = io;
  stats.heavy_hitters = CollectHeavyHitters(values, options.buckets, scale);
  return stats;
}

Result<ColumnStatistics> MakeIncrementalStatistics(const Histogram& histogram,
                                                   BackingReservoir reservoir) {
  if (reservoir.size() == 0) {
    return Status::FailedPrecondition(
        "cannot assemble statistics from an empty reservoir");
  }
  const std::uint64_t n = histogram.total();
  const std::vector<Value> sorted = reservoir.SortedSample();
  const double scale =
      static_cast<double>(n) / static_cast<double>(sorted.size());

  ColumnStatistics stats;
  stats.density = ComputeDensity(sorted);
  // The reservoir is a uniform without-replacement sample of the live
  // column, so the paper's sampled estimator applies.
  EQUIHIST_ASSIGN_OR_RETURN(stats.distinct_estimate,
                            EstimateDistinct(sorted, /*sampled=*/true, n));
  stats.row_count = n;
  stats.from_full_scan = false;
  stats.sample_size = sorted.size();
  stats.build_cost = IoStats{};  // the whole point: zero storage I/O
  stats.heavy_hitters =
      CollectHeavyHitters(sorted, histogram.bucket_count(), scale);
  stats.model = std::make_shared<IncrementalEquiDepthModel>(
      histogram, std::move(reservoir));
  return stats;
}

}  // namespace equihist
