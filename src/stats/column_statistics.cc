#include "stats/column_statistics.h"

#include <algorithm>
#include <sstream>

#include "common/parallel_sort.h"
#include "common/string_util.h"
#include "core/density.h"
#include "core/histogram_builder.h"
#include "core/range_estimator.h"
#include "distinct/estimators.h"
#include "storage/scan.h"

namespace equihist {

void ColumnStatistics::CompileEstimator() {
  compiled = std::make_shared<const CompiledEstimator>(histogram);
}

double ColumnStatistics::EstimateRangeCount(const RangeQuery& query) const {
  if (compiled != nullptr) return compiled->EstimateRangeCount(query);
  return ::equihist::EstimateRangeCount(histogram, query);
}

void ColumnStatistics::EstimateRangeCounts(std::span<const RangeQuery> queries,
                                           std::span<double> out,
                                           ThreadPool* pool) const {
  if (compiled != nullptr) {
    compiled->EstimateRangeCounts(queries, out, pool);
    return;
  }
  for (std::size_t i = 0; i < queries.size(); ++i) {
    out[i] = ::equihist::EstimateRangeCount(histogram, queries[i]);
  }
}

double ColumnStatistics::EstimateEqualityCount(Value value) const {
  // Frequent values are pinned exactly (the compressed-histogram singleton
  // list collected at build time).
  const auto it = std::lower_bound(
      heavy_hitters.begin(), heavy_hitters.end(), value,
      [](const CompressedHistogram::Singleton& s, Value v) {
        return s.value < v;
      });
  if (it != heavy_hitters.end() && it->value == value) {
    return static_cast<double>(it->count);
  }
  // Out-of-domain values match nothing.
  if (value <= histogram.lower_fence() || value > histogram.upper_fence()) {
    return 0.0;
  }
  // Infrequent value: average multiplicity among the non-heavy values,
  // n_light / d_light — the density-style fallback an optimizer uses when
  // the histogram cannot resolve the value.
  double heavy_mass = 0.0;
  for (const auto& s : heavy_hitters) heavy_mass += static_cast<double>(s.count);
  const double light_mass =
      std::max(static_cast<double>(row_count) - heavy_mass, 0.0);
  const double light_distinct = std::max(
      distinct_estimate - static_cast<double>(heavy_hitters.size()), 1.0);
  return std::max(light_mass / light_distinct, 0.0);
}

double ColumnStatistics::EstimateDistinctFraction() const {
  if (row_count == 0) return 0.0;
  return distinct_estimate / static_cast<double>(row_count);
}

std::string ColumnStatistics::ToString() const {
  std::ostringstream os;
  os << "ColumnStatistics{rows=" << FormatWithThousands(row_count)
     << ", k=" << histogram.bucket_count()
     << ", density=" << FormatFixed(density, 6)
     << ", distinct~=" << FormatCount(distinct_estimate)
     << ", heavy=" << heavy_hitters.size()
     << ", built from " << (from_full_scan ? "full scan" : "sample")
     << " of " << FormatWithThousands(sample_size) << " tuples ("
     << FormatWithThousands(build_cost.pages_read) << " pages)}";
  return os.str();
}

Result<ColumnStatistics> BuildStatisticsFullScan(const Table& table,
                                                 std::uint64_t buckets,
                                                 ThreadPool* pool) {
  IoStats io;
  std::vector<Value> values = FullScan(table, &io, pool);
  // Pre-sort in parallel; the ValueSet constructor then detects sorted
  // input and skips its own sequential sort.
  ParallelSort(values, pool);
  const ValueSet data(std::move(values));
  if (data.empty()) {
    return Status::FailedPrecondition("table is empty");
  }
  EQUIHIST_ASSIGN_OR_RETURN(Histogram histogram,
                            BuildPerfectHistogram(data, buckets, pool));

  ColumnStatistics stats{.histogram = std::move(histogram)};
  stats.density = ComputeDensity(data.sorted_values());
  stats.distinct_estimate = static_cast<double>(data.DistinctCount());
  stats.row_count = data.size();
  stats.from_full_scan = true;
  stats.sample_size = data.size();
  stats.build_cost = io;

  // Exact heavy hitters: multiplicity above the ideal bucket size.
  const double ideal = static_cast<double>(data.size()) /
                       static_cast<double>(buckets);
  const auto& sorted = data.sorted_values();
  for (std::size_t i = 0; i < sorted.size();) {
    std::size_t j = i;
    while (j < sorted.size() && sorted[j] == sorted[i]) ++j;
    if (static_cast<double>(j - i) > ideal) {
      stats.heavy_hitters.push_back(
          CompressedHistogram::Singleton{sorted[i], j - i});
    }
    i = j;
  }
  stats.CompileEstimator();
  return stats;
}

Result<ColumnStatistics> BuildStatisticsSampled(const Table& table,
                                                const CvbOptions& options,
                                                ThreadPool* pool) {
  EQUIHIST_ASSIGN_OR_RETURN(CvbResult result, RunCvb(table, options, pool));
  EQUIHIST_ASSIGN_OR_RETURN(
      const double distinct,
      PaperEstimator(result.sample_profile, table.tuple_count()));

  ColumnStatistics stats{.histogram = std::move(result.histogram)};
  stats.density = result.density_estimate;
  stats.distinct_estimate = distinct;
  stats.row_count = table.tuple_count();
  stats.from_full_scan = false;
  stats.sample_size = result.tuples_sampled;
  stats.build_cost = result.io;
  stats.heavy_hitters = std::move(result.heavy_hitters);
  stats.CompileEstimator();
  return stats;
}

}  // namespace equihist
