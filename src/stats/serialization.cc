#include "stats/serialization.h"

#include <cstring>

namespace equihist {
namespace {

constexpr std::uint32_t kMagic = 0x53485145;  // 'EQHS'
constexpr std::uint8_t kVersion = 1;

void PutVarint(std::uint64_t v, std::vector<std::uint8_t>* out) {
  while (v >= 0x80) {
    out->push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out->push_back(static_cast<std::uint8_t>(v));
}

std::uint64_t ZigZag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

std::int64_t UnZigZag(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^
         -static_cast<std::int64_t>(v & 1);
}

void PutSigned(std::int64_t v, std::vector<std::uint8_t>* out) {
  PutVarint(ZigZag(v), out);
}

void PutF64(double v, std::vector<std::uint8_t>* out) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<std::uint8_t>(bits >> (8 * i)));
  }
}

// A bounds-checked little reader over the byte span.
class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  std::size_t position() const { return pos_; }

  Result<std::uint64_t> Varint() {
    std::uint64_t value = 0;
    int shift = 0;
    while (true) {
      if (pos_ >= bytes_.size()) {
        return Status::InvalidArgument("truncated varint");
      }
      if (shift >= 64) {
        return Status::InvalidArgument("varint overflows 64 bits");
      }
      const std::uint8_t byte = bytes_[pos_++];
      value |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
      if ((byte & 0x80) == 0) return value;
      shift += 7;
    }
  }

  Result<std::int64_t> Signed() {
    EQUIHIST_ASSIGN_OR_RETURN(const std::uint64_t raw, Varint());
    return UnZigZag(raw);
  }

  Result<std::uint8_t> Byte() {
    if (pos_ >= bytes_.size()) {
      return Status::InvalidArgument("truncated byte");
    }
    return bytes_[pos_++];
  }

  Result<double> F64() {
    if (pos_ + 8 > bytes_.size()) {
      return Status::InvalidArgument("truncated double");
    }
    std::uint64_t bits = 0;
    for (int i = 0; i < 8; ++i) {
      bits |= static_cast<std::uint64_t>(bytes_[pos_ + i]) << (8 * i);
    }
    pos_ += 8;
    double value;
    std::memcpy(&value, &bits, sizeof(value));
    return value;
  }

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

}  // namespace

void SerializeHistogram(const Histogram& histogram,
                        std::vector<std::uint8_t>* out) {
  PutVarint(kMagic, out);
  out->push_back(kVersion);
  PutVarint(histogram.bucket_count(), out);
  PutVarint(histogram.total(), out);
  PutSigned(histogram.lower_fence(), out);
  PutSigned(histogram.upper_fence(), out);
  Value prev = histogram.lower_fence();
  for (Value s : histogram.separators()) {
    PutSigned(s - prev, out);
    prev = s;
  }
  for (std::uint64_t c : histogram.counts()) PutVarint(c, out);
}

Result<Histogram> DeserializeHistogram(std::span<const std::uint8_t> bytes,
                                       std::size_t* consumed) {
  Reader reader(bytes);
  EQUIHIST_ASSIGN_OR_RETURN(const std::uint64_t magic, reader.Varint());
  if (magic != kMagic) {
    return Status::InvalidArgument("bad histogram magic");
  }
  EQUIHIST_ASSIGN_OR_RETURN(const std::uint8_t version, reader.Byte());
  if (version != kVersion) {
    return Status::InvalidArgument("unsupported histogram version");
  }
  EQUIHIST_ASSIGN_OR_RETURN(const std::uint64_t k, reader.Varint());
  if (k == 0 || k > (1ULL << 32)) {
    return Status::InvalidArgument("implausible bucket count");
  }
  EQUIHIST_ASSIGN_OR_RETURN(const std::uint64_t total, reader.Varint());
  EQUIHIST_ASSIGN_OR_RETURN(const std::int64_t lower, reader.Signed());
  EQUIHIST_ASSIGN_OR_RETURN(const std::int64_t upper, reader.Signed());

  std::vector<Value> separators;
  separators.reserve(k - 1);
  Value prev = lower;
  for (std::uint64_t j = 0; j + 1 < k; ++j) {
    EQUIHIST_ASSIGN_OR_RETURN(const std::int64_t delta, reader.Signed());
    prev += delta;
    separators.push_back(prev);
  }
  std::vector<std::uint64_t> counts;
  counts.reserve(k);
  std::uint64_t sum = 0;
  for (std::uint64_t j = 0; j < k; ++j) {
    EQUIHIST_ASSIGN_OR_RETURN(const std::uint64_t c, reader.Varint());
    counts.push_back(c);
    sum += c;
  }
  if (sum != total) {
    return Status::InvalidArgument("bucket counts do not sum to total");
  }
  EQUIHIST_ASSIGN_OR_RETURN(
      Histogram histogram,
      Histogram::Create(std::move(separators), std::move(counts), lower,
                        upper));
  if (consumed != nullptr) *consumed = reader.position();
  return histogram;
}

void SerializeColumnStatistics(const ColumnStatistics& stats,
                               std::vector<std::uint8_t>* out) {
  SerializeHistogram(stats.histogram, out);
  PutF64(stats.density, out);
  PutF64(stats.distinct_estimate, out);
  PutVarint(stats.heavy_hitters.size(), out);
  Value prev = stats.histogram.lower_fence();
  for (const auto& h : stats.heavy_hitters) {
    PutSigned(h.value - prev, out);
    prev = h.value;
    PutVarint(h.count, out);
  }
  out->push_back(stats.from_full_scan ? 1 : 0);
  PutVarint(stats.sample_size, out);
  PutVarint(stats.row_count, out);
}

Result<ColumnStatistics> DeserializeColumnStatistics(
    std::span<const std::uint8_t> bytes) {
  std::size_t consumed = 0;
  EQUIHIST_ASSIGN_OR_RETURN(Histogram histogram,
                            DeserializeHistogram(bytes, &consumed));
  Reader reader(bytes.subspan(consumed));
  ColumnStatistics stats{.histogram = std::move(histogram)};
  EQUIHIST_ASSIGN_OR_RETURN(stats.density, reader.F64());
  EQUIHIST_ASSIGN_OR_RETURN(stats.distinct_estimate, reader.F64());
  EQUIHIST_ASSIGN_OR_RETURN(const std::uint64_t hitters, reader.Varint());
  if (hitters > (1ULL << 32)) {
    return Status::InvalidArgument("implausible heavy-hitter count");
  }
  Value prev = stats.histogram.lower_fence();
  for (std::uint64_t i = 0; i < hitters; ++i) {
    EQUIHIST_ASSIGN_OR_RETURN(const std::int64_t delta, reader.Signed());
    prev += delta;
    EQUIHIST_ASSIGN_OR_RETURN(const std::uint64_t count, reader.Varint());
    stats.heavy_hitters.push_back(
        CompressedHistogram::Singleton{prev, count});
  }
  EQUIHIST_ASSIGN_OR_RETURN(const std::uint8_t flags, reader.Byte());
  stats.from_full_scan = (flags & 1) != 0;
  EQUIHIST_ASSIGN_OR_RETURN(stats.sample_size, reader.Varint());
  EQUIHIST_ASSIGN_OR_RETURN(stats.row_count, reader.Varint());
  // Loaded statistics serve reads immediately, so recompile the read-side
  // estimator (it is derived state, never persisted).
  stats.CompileEstimator();
  return stats;
}

bool HistogramFitsInPage(const Histogram& histogram,
                         std::uint32_t page_size_bytes) {
  std::vector<std::uint8_t> bytes;
  SerializeHistogram(histogram, &bytes);
  return bytes.size() <= page_size_bytes;
}

std::uint64_t MaxBucketsForPage(const Histogram& reference,
                                std::uint32_t page_size_bytes) {
  std::vector<std::uint8_t> bytes;
  SerializeHistogram(reference, &bytes);
  if (bytes.empty()) return 0;
  const double per_bucket = static_cast<double>(bytes.size()) /
                            static_cast<double>(reference.bucket_count());
  return static_cast<std::uint64_t>(
      static_cast<double>(page_size_bytes) / per_bucket);
}

}  // namespace equihist
