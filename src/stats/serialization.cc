#include "stats/serialization.h"

#include <utility>

#include "stats/histogram_backends.h"
#include "stats/wire_format.h"

namespace equihist {
namespace {

constexpr std::uint32_t kMagic = 0x53485145;  // 'EQHS'
constexpr std::uint8_t kVersion = 2;
// Version 1 had no backend-id byte; its payload is always equi-height.
constexpr std::uint8_t kVersionEquiHeightOnly = 1;

using wire::PutF64;
using wire::PutSigned;
using wire::PutVarint;
using wire::Reader;
using wire::WrapAdd;
using wire::WrapSub;

}  // namespace

void SerializeHistogramModel(const HistogramModel& model,
                             std::vector<std::uint8_t>* out) {
  PutVarint(kMagic, out);
  out->push_back(kVersion);
  out->push_back(static_cast<std::uint8_t>(model.backend_id()));
  model.SerializePayload(out);
}

Result<HistogramModelPtr> DeserializeHistogramModel(
    std::span<const std::uint8_t> bytes, std::size_t* consumed) {
  Reader reader(bytes);
  EQUIHIST_ASSIGN_OR_RETURN(const std::uint64_t magic, reader.Varint());
  if (magic != kMagic) {
    return Status::InvalidArgument("bad histogram magic");
  }
  EQUIHIST_ASSIGN_OR_RETURN(const std::uint8_t version, reader.Byte());
  HistogramBackendId backend_id = HistogramBackendId::kEquiHeight;
  if (version == kVersion) {
    EQUIHIST_ASSIGN_OR_RETURN(const std::uint8_t id_byte, reader.Byte());
    backend_id = static_cast<HistogramBackendId>(id_byte);
  } else if (version != kVersionEquiHeightOnly) {
    return Status::InvalidArgument("unsupported histogram format version");
  }
  EQUIHIST_ASSIGN_OR_RETURN(
      const HistogramBackendRegistry::Backend backend,
      HistogramBackendRegistry::Global().Find(backend_id));
  std::size_t payload_consumed = 0;
  EQUIHIST_ASSIGN_OR_RETURN(
      HistogramModelPtr model,
      backend.deserialize_payload(bytes.subspan(reader.position()),
                                  &payload_consumed));
  const std::size_t total = reader.position() + payload_consumed;
  if (consumed != nullptr) {
    *consumed = total;
  } else if (total != bytes.size()) {
    return Status::InvalidArgument("trailing bytes after the histogram");
  }
  return model;
}

void SerializeHistogram(const Histogram& histogram,
                        std::vector<std::uint8_t>* out) {
  PutVarint(kMagic, out);
  out->push_back(kVersion);
  out->push_back(static_cast<std::uint8_t>(HistogramBackendId::kEquiHeight));
  EquiHeightModel::SerializeEquiHeightPayload(histogram, out);
}

Result<Histogram> DeserializeHistogram(std::span<const std::uint8_t> bytes,
                                       std::size_t* consumed) {
  std::size_t used = 0;
  EQUIHIST_ASSIGN_OR_RETURN(const HistogramModelPtr model,
                            DeserializeHistogramModel(bytes, &used));
  // Any equi-height-family model (plain or a GMP snapshot) carries a
  // concrete Histogram; other families cannot satisfy this API.
  const auto* equi = dynamic_cast<const EquiHeightModel*>(model.get());
  if (equi == nullptr) {
    return Status::InvalidArgument(
        "the serialized histogram is not equi-height");
  }
  if (consumed != nullptr) {
    *consumed = used;
  } else if (used != bytes.size()) {
    return Status::InvalidArgument("trailing bytes after the histogram");
  }
  return equi->histogram();
}

void SerializeColumnStatistics(const ColumnStatistics& stats,
                               std::vector<std::uint8_t>* out) {
  SerializeHistogramModel(*stats.model, out);
  PutF64(stats.density, out);
  PutF64(stats.distinct_estimate, out);
  PutVarint(stats.heavy_hitters.size(), out);
  Value prev = stats.model->lower_fence();
  for (const auto& h : stats.heavy_hitters) {
    PutSigned(WrapSub(h.value, prev), out);
    prev = h.value;
    PutVarint(h.count, out);
  }
  out->push_back(stats.from_full_scan ? 1 : 0);
  PutVarint(stats.sample_size, out);
  PutVarint(stats.row_count, out);
}

Result<ColumnStatistics> DeserializeColumnStatistics(
    std::span<const std::uint8_t> bytes) {
  std::size_t consumed = 0;
  EQUIHIST_ASSIGN_OR_RETURN(HistogramModelPtr model,
                            DeserializeHistogramModel(bytes, &consumed));
  Reader reader(bytes.subspan(consumed));
  ColumnStatistics stats;
  stats.model = std::move(model);
  EQUIHIST_ASSIGN_OR_RETURN(stats.density, reader.F64());
  EQUIHIST_ASSIGN_OR_RETURN(stats.distinct_estimate, reader.F64());
  // Each heavy hitter is at least two bytes (value delta + count), so a
  // corrupted count cannot size an allocation past the buffer.
  EQUIHIST_ASSIGN_OR_RETURN(const std::uint64_t hitters,
                            reader.LengthPrefixedCount(2));
  stats.heavy_hitters.reserve(hitters);
  Value prev = stats.model->lower_fence();
  for (std::uint64_t i = 0; i < hitters; ++i) {
    EQUIHIST_ASSIGN_OR_RETURN(const std::int64_t delta, reader.Signed());
    prev = WrapAdd(prev, delta);
    EQUIHIST_ASSIGN_OR_RETURN(const std::uint64_t count, reader.Varint());
    stats.heavy_hitters.push_back(
        CompressedHistogram::Singleton{prev, count});
  }
  EQUIHIST_ASSIGN_OR_RETURN(const std::uint8_t flags, reader.Byte());
  if (flags > 1) {
    return Status::InvalidArgument("bad statistics flags");
  }
  stats.from_full_scan = (flags & 1) != 0;
  EQUIHIST_ASSIGN_OR_RETURN(stats.sample_size, reader.Varint());
  EQUIHIST_ASSIGN_OR_RETURN(stats.row_count, reader.Varint());
  if (consumed + reader.position() != bytes.size()) {
    return Status::InvalidArgument("trailing bytes after the statistics");
  }
  return stats;
}

bool HistogramFitsInPage(const Histogram& histogram,
                         std::uint32_t page_size_bytes) {
  std::vector<std::uint8_t> bytes;
  SerializeHistogram(histogram, &bytes);
  return bytes.size() <= page_size_bytes;
}

std::uint64_t MaxBucketsForPage(const Histogram& reference,
                                std::uint32_t page_size_bytes) {
  std::vector<std::uint8_t> bytes;
  SerializeHistogram(reference, &bytes);
  if (bytes.empty()) return 0;
  const double per_bucket = static_cast<double>(bytes.size()) /
                            static_cast<double>(reference.bucket_count());
  return static_cast<std::uint64_t>(
      static_cast<double>(page_size_bytes) / per_bucket);
}

}  // namespace equihist
