#ifndef EQUIHIST_BASELINE_SERIAL_HISTOGRAMS_H_
#define EQUIHIST_BASELINE_SERIAL_HISTOGRAMS_H_

#include <cstdint>
#include <span>

#include "common/result.h"
#include "core/histogram.h"
#include "data/distribution.h"

namespace equihist {

// The serial histogram families of Ioannidis & Poosala (references [15,16]
// of the paper). Extending the sampling bounds to these structures is the
// paper's stated ongoing work ("Extending our results to the case of other
// histogram structures [15, 16] is one of our ongoing research goals");
// this module provides the structures themselves so the extension can be
// studied empirically: both builders also accept samples, and
// bench_histogram_families races all families on range workloads.
//
// Both produce a standard equihist::Histogram (separators at group ends,
// claimed counts = group frequency sums), so every error metric and the
// range estimator apply unchanged.

// V-Optimal(V,F): partitions the ordered distinct values into k contiguous
// groups minimizing the total within-group variance of the value
// *frequencies* — the optimal serial histogram for equality-predicate
// error under the uniform-frequency assumption. Exact dynamic program,
// O(d^2 k) time and O(d k) memory over d distinct values: intended for
// d up to a few thousand (use the sample-based builder beyond that).
Result<Histogram> BuildVOptimalHistogram(const FrequencyVector& frequencies,
                                         std::uint64_t k);

// The same, over the observed frequencies of a sorted random sample, with
// counts scaled to population_size — the natural "construct from a random
// sample" analog this library's bounds would need to cover to extend
// Theorem 4 to the V-optimal family.
Result<Histogram> BuildVOptimalFromSample(std::span<const Value> sorted_sample,
                                          std::uint64_t k,
                                          std::uint64_t population_size);

// MaxDiff(V,F): places the k-1 boundaries at the k-1 largest adjacent
// differences |f_{i+1} - f_i| of the frequency sequence. O(d log d); the
// practical member of the family recommended by [16].
Result<Histogram> BuildMaxDiffHistogram(const FrequencyVector& frequencies,
                                        std::uint64_t k);

// MaxDiff from a sorted sample, counts scaled to population_size.
Result<Histogram> BuildMaxDiffFromSample(std::span<const Value> sorted_sample,
                                         std::uint64_t k,
                                         std::uint64_t population_size);

// The objective the V-optimal DP minimizes, exposed for testing and for
// comparing families: total within-bucket frequency variance of
// `histogram`'s buckets over the given frequency vector.
double FrequencyVarianceObjective(const Histogram& histogram,
                                  const FrequencyVector& frequencies);

}  // namespace equihist

#endif  // EQUIHIST_BASELINE_SERIAL_HISTOGRAMS_H_
