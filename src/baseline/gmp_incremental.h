#ifndef EQUIHIST_BASELINE_GMP_INCREMENTAL_H_
#define EQUIHIST_BASELINE_GMP_INCREMENTAL_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "core/histogram.h"
#include "sampling/reservoir.h"

namespace equihist {

// The Gibbons-Matias-Poosala incremental equi-depth histogram (VLDB 1997)
// — the prior work the paper compares its bounds against in Section 3.4,
// implemented here as the *maintenance* strategy behind the
// incremental-equi-depth backend (DESIGN.md §15):
//
//   * a backing random sample of the stream is kept (BackingReservoir);
//   * every insert increments the count of the bucket holding the value;
//   * when a bucket exceeds the threshold T = (2 + gamma) * N / B, it is
//     split at its approximate median (taken from the backing sample), and
//     the lightest adjacent bucket pair is merged to keep B buckets;
//   * every delete decrements its bucket; when a bucket drains below the
//     low-water mark N / (B * (2 + gamma)), it is merged into its lighter
//     neighbor and the heaviest bucket is split to restore B buckets;
//   * if a split/merge cannot be arranged, the whole histogram is
//     recomputed from the backing sample.
//
// The paper's alternative is to simply *recompute from a bounded sample*
// with the Theorem 4 budget; bench_baseline_comparison races the two and
// bench_incremental_maintenance measures the refresh-vs-rebuild crossover.
struct GmpOptions {
  std::uint64_t buckets = 100;          // B
  double gamma = 0.5;                   // threshold slack, T = (2+gamma)N/B
  std::uint64_t reservoir_capacity = 10000;
  std::uint64_t seed = 1;
};

class IncrementalEquiDepth {
 public:
  // Returns InvalidArgument for buckets == 0, gamma <= 0, or a reservoir
  // smaller than the bucket count.
  static Result<IncrementalEquiDepth> Create(const GmpOptions& options);

  // Resumes maintenance from a published histogram and its backing
  // reservoir — the warm-restart path of the incremental backend. The
  // histogram must have exactly options.buckets buckets and the reservoir
  // the same capacity floor Create enforces.
  static Result<IncrementalEquiDepth> FromState(const GmpOptions& options,
                                                const Histogram& histogram,
                                                BackingReservoir reservoir);

  // Inserts one value: updates the reservoir, bumps the bucket count, and
  // splits/merges/recomputes as required by the thresholds.
  void Insert(Value value);

  // Deletes one row with value `value`: counted-replacement update of the
  // reservoir, bucket decrement, and merge/split repair when the bucket
  // drains below the low-water mark. No-op before the first insert.
  void Delete(Value value);

  std::uint64_t size() const { return n_; }

  // The current approximate histogram. FailedPrecondition before the first
  // insert.
  Result<Histogram> Snapshot() const;

  // Maintenance counters (for the cost accounting in benchmarks).
  std::uint64_t split_count() const { return splits_; }
  std::uint64_t merge_count() const { return merges_; }
  std::uint64_t recompute_count() const { return recomputes_; }

  const BackingReservoir& backing_sample() const { return reservoir_; }

 private:
  IncrementalEquiDepth(const GmpOptions& options, BackingReservoir reservoir);

  double Threshold() const;
  std::uint64_t BucketIndexForValue(Value value) const;
  // Splits bucket j at the approximate median of its contents; returns
  // false if the backing sample cannot provide a separator strictly inside
  // the bucket (e.g. the bucket is one repeated value).
  bool TrySplit(std::uint64_t j);
  // Merges the lightest adjacent pair if its combined count is below the
  // threshold; returns false otherwise.
  bool TryMergeLightestPair();
  // Rate-limits maintenance; returns false while the cooldown is active.
  bool MaintenanceDue();
  void RecomputeFromSample();

  GmpOptions options_;
  BackingReservoir reservoir_;
  std::uint64_t n_ = 0;
  Value min_value_ = 0;
  Value max_value_ = 0;
  std::vector<Value> separators_;        // size B-1 once initialized
  std::vector<std::uint64_t> counts_;    // size B once initialized
  bool initialized_ = false;
  // Cooldown runs on a monotonic op clock, not on n_: under deletes n_
  // shrinks, and a high-water cooldown pinned to n_ would never expire.
  std::uint64_t maintenance_ops_ = 0;
  std::uint64_t maintenance_cooldown_until_ = 0;
  std::uint64_t splits_ = 0;
  std::uint64_t merges_ = 0;
  std::uint64_t recomputes_ = 0;
};

}  // namespace equihist

#endif  // EQUIHIST_BASELINE_GMP_INCREMENTAL_H_
