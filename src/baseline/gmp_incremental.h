#ifndef EQUIHIST_BASELINE_GMP_INCREMENTAL_H_
#define EQUIHIST_BASELINE_GMP_INCREMENTAL_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "core/histogram.h"
#include "sampling/row_sampler.h"

namespace equihist {

// The Gibbons-Matias-Poosala incremental equi-depth histogram (VLDB 1997)
// — the prior work the paper compares its bounds against in Section 3.4,
// implemented here as the baseline *maintenance* strategy:
//
//   * a backing random sample of the stream is kept in a reservoir;
//   * every insert increments the count of the bucket holding the value;
//   * when a bucket exceeds the threshold T = (2 + gamma) * N / B, it is
//     split at its approximate median (taken from the backing sample), and
//     the lightest adjacent bucket pair is merged to keep B buckets;
//   * if no adjacent pair is light enough to merge, the whole histogram is
//     recomputed from the backing sample.
//
// The paper's alternative is to simply *recompute from a bounded sample*
// with the Theorem 4 budget; bench_baseline_comparison races the two.
struct GmpOptions {
  std::uint64_t buckets = 100;          // B
  double gamma = 0.5;                   // threshold slack, T = (2+gamma)N/B
  std::uint64_t reservoir_capacity = 10000;
  std::uint64_t seed = 1;
};

class IncrementalEquiDepth {
 public:
  // Returns InvalidArgument for buckets == 0, gamma <= 0, or a reservoir
  // smaller than the bucket count.
  static Result<IncrementalEquiDepth> Create(const GmpOptions& options);

  // Inserts one value: updates the reservoir, bumps the bucket count, and
  // splits/merges/recomputes as required by the thresholds.
  void Insert(Value value);

  std::uint64_t size() const { return n_; }

  // The current approximate histogram. FailedPrecondition before the first
  // insert.
  Result<Histogram> Snapshot() const;

  // Maintenance counters (for the cost accounting in benchmarks).
  std::uint64_t split_count() const { return splits_; }
  std::uint64_t merge_count() const { return merges_; }
  std::uint64_t recompute_count() const { return recomputes_; }

  const ReservoirSampler& backing_sample() const { return reservoir_; }

 private:
  explicit IncrementalEquiDepth(const GmpOptions& options);

  double Threshold() const;
  std::uint64_t BucketIndexForValue(Value value) const;
  // Splits bucket j at the approximate median of its contents; returns
  // false if the backing sample cannot provide a separator strictly inside
  // the bucket (e.g. the bucket is one repeated value).
  bool TrySplit(std::uint64_t j);
  // Merges the lightest adjacent pair if its combined count is below the
  // threshold; returns false otherwise.
  bool TryMergeLightestPair();
  void RecomputeFromSample();

  GmpOptions options_;
  ReservoirSampler reservoir_;
  std::uint64_t n_ = 0;
  Value min_value_ = 0;
  Value max_value_ = 0;
  std::vector<Value> separators_;        // size B-1 once initialized
  std::vector<std::uint64_t> counts_;    // size B once initialized
  bool initialized_ = false;
  std::uint64_t maintenance_cooldown_until_ = 0;
  std::uint64_t splits_ = 0;
  std::uint64_t merges_ = 0;
  std::uint64_t recomputes_ = 0;
};

}  // namespace equihist

#endif  // EQUIHIST_BASELINE_GMP_INCREMENTAL_H_
