#include "baseline/equi_width.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/math.h"
#include "common/string_util.h"
#include "core/histogram.h"

namespace equihist {
namespace {

Status Validate(std::uint64_t m, std::uint64_t k) {
  if (k == 0) return Status::InvalidArgument("k must be at least 1");
  if (m == 0) {
    return Status::FailedPrecondition(
        "cannot build a histogram over an empty value set");
  }
  return Status::OK();
}

}  // namespace

Result<EquiWidthHistogram> EquiWidthHistogram::Build(const ValueSet& population,
                                                     std::uint64_t k) {
  EQUIHIST_RETURN_IF_ERROR(Validate(population.size(), k));
  EquiWidthHistogram h;
  h.lo_ = population.min() - 1;
  h.hi_ = population.max();
  h.total_ = population.size();
  h.counts_.assign(k, 0);
  for (Value v : population.sorted_values()) {
    ++h.counts_[h.BucketIndexForValue(v)];
  }
  return h;
}

Result<EquiWidthHistogram> EquiWidthHistogram::BuildFromSample(
    std::span<const Value> sorted_sample, std::uint64_t k,
    std::uint64_t population_size) {
  EQUIHIST_RETURN_IF_ERROR(Validate(sorted_sample.size(), k));
  if (population_size == 0) {
    return Status::InvalidArgument("population_size must be positive");
  }
  EquiWidthHistogram h;
  h.lo_ = sorted_sample.front() - 1;
  h.hi_ = sorted_sample.back();
  h.total_ = population_size;
  h.counts_.assign(k, 0);
  std::vector<std::uint64_t> sample_counts(k, 0);
  for (Value v : sorted_sample) {
    ++sample_counts[h.BucketIndexForValue(v)];
  }
  // Scale to the population with largest-remainder rounding.
  std::vector<double> weights;
  weights.reserve(k);
  for (std::uint64_t c : sample_counts) {
    weights.push_back(static_cast<double>(c));
  }
  h.counts_ = ApportionProportionally(weights, population_size);
  return h;
}

Result<EquiWidthHistogram> EquiWidthHistogram::FromParts(
    std::vector<std::uint64_t> counts, Value lo, Value hi) {
  if (counts.empty()) {
    return Status::InvalidArgument("an equi-width histogram needs >= 1 bucket");
  }
  if (lo >= hi) {
    return Status::InvalidArgument(
        "the equi-width domain (lo, hi] must be non-empty");
  }
  EquiWidthHistogram h;
  h.lo_ = lo;
  h.hi_ = hi;
  h.total_ = 0;
  for (std::uint64_t c : counts) h.total_ += c;
  h.counts_ = std::move(counts);
  return h;
}

std::uint64_t EquiWidthHistogram::BucketIndexForValue(Value v) const {
  if (v <= lo_ + 1) return 0;
  if (v >= hi_) return counts_.size() - 1;
  // Bucket j covers (lo + j*w, lo + (j+1)*w] for width w = (hi-lo)/k.
  // ValueDistance: the signed subtractions overflow (UB) for domains
  // spanning more than half the int64 range.
  const double width =
      ValueDistance(lo_, hi_) / static_cast<double>(counts_.size());
  const auto index =
      static_cast<std::uint64_t>(std::ceil(ValueDistance(lo_, v) / width) - 1.0);
  return std::min<std::uint64_t>(index, counts_.size() - 1);
}

Value EquiWidthHistogram::BucketLowerBound(std::uint64_t j) const {
  if (j == 0) return lo_;
  const double width =
      ValueDistance(lo_, hi_) / static_cast<double>(counts_.size());
  // Offsets are applied in unsigned arithmetic: for a domain wider than
  // half the int64 range the offset itself exceeds INT64_MAX, so both
  // llround and a signed addition would be UB.
  const auto offset =
      static_cast<std::uint64_t>(std::round(width * static_cast<double>(j)));
  return static_cast<Value>(static_cast<std::uint64_t>(lo_) + offset);
}

Value EquiWidthHistogram::BucketUpperBound(std::uint64_t j) const {
  if (j == counts_.size() - 1) return hi_;
  const double width =
      ValueDistance(lo_, hi_) / static_cast<double>(counts_.size());
  const auto offset = static_cast<std::uint64_t>(
      std::round(width * static_cast<double>(j + 1)));
  return static_cast<Value>(static_cast<std::uint64_t>(lo_) + offset);
}

double EquiWidthHistogram::EstimateRangeCount(const RangeQuery& query) const {
  // Mirrors the core estimator's semantics exactly (core/range_estimator):
  // clamp to the fences, empty after clamping -> 0, degenerate zero-width
  // buckets contribute all-or-nothing at their pinned value instead of
  // being dropped, and partial buckets interpolate by ValueDistance ratio.
  // The differential test in baseline_equi_width_test locks this to the
  // reference loop bit-for-bit.
  const Value lo = std::max(query.lo, lo_);
  const Value hi = std::min(query.hi, hi_);
  if (hi <= lo) return 0.0;
  KahanSum estimate;
  for (std::uint64_t j = 0; j < counts_.size(); ++j) {
    const Value bucket_lo = BucketLowerBound(j);
    const Value bucket_hi = BucketUpperBound(j);
    const double count = static_cast<double>(counts_[j]);
    if (bucket_hi <= bucket_lo) {
      // Zero-width bucket (domain narrower than k): a single value at
      // bucket_hi.
      if (lo < bucket_hi && bucket_hi <= hi) estimate.Add(count);
      continue;
    }
    const Value cover_lo = std::max(lo, bucket_lo);
    const Value cover_hi = std::min(hi, bucket_hi);
    if (cover_hi <= cover_lo) continue;
    const double fraction = ValueDistance(cover_lo, cover_hi) /
                            ValueDistance(bucket_lo, bucket_hi);
    estimate.Add(count * fraction);
  }
  return estimate.Value();
}

std::string EquiWidthHistogram::ToString(std::size_t max_buckets) const {
  std::ostringstream os;
  os << "EquiWidthHistogram{k=" << counts_.size()
     << ", n=" << FormatWithThousands(total_) << ", domain=(" << lo_ << ", "
     << hi_ << "]}\n";
  const std::size_t show = std::min<std::size_t>(counts_.size(), max_buckets);
  for (std::size_t j = 0; j < show; ++j) {
    os << "  B" << j + 1 << ": (" << BucketLowerBound(j) << ", "
       << BucketUpperBound(j) << "]  count=" << counts_[j] << "\n";
  }
  if (show < counts_.size()) {
    os << "  ... (" << counts_.size() - show << " more buckets)\n";
  }
  return os.str();
}

}  // namespace equihist
