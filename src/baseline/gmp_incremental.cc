#include "baseline/gmp_incremental.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <utility>

#include "core/histogram_builder.h"

namespace equihist {
namespace {

Status ValidateGmpOptions(const GmpOptions& options) {
  if (options.buckets == 0) {
    return Status::InvalidArgument("buckets must be positive");
  }
  if (options.gamma <= 0.0) {
    return Status::InvalidArgument("gamma must be positive");
  }
  if (options.reservoir_capacity < options.buckets) {
    return Status::InvalidArgument(
        "reservoir must hold at least one value per bucket");
  }
  return Status::OK();
}

}  // namespace

Result<IncrementalEquiDepth> IncrementalEquiDepth::Create(
    const GmpOptions& options) {
  EQUIHIST_RETURN_IF_ERROR(ValidateGmpOptions(options));
  EQUIHIST_ASSIGN_OR_RETURN(
      BackingReservoir reservoir,
      BackingReservoir::Create(options.reservoir_capacity, options.seed));
  return IncrementalEquiDepth(options, std::move(reservoir));
}

Result<IncrementalEquiDepth> IncrementalEquiDepth::FromState(
    const GmpOptions& options, const Histogram& histogram,
    BackingReservoir reservoir) {
  EQUIHIST_RETURN_IF_ERROR(ValidateGmpOptions(options));
  if (histogram.bucket_count() != options.buckets) {
    return Status::InvalidArgument(
        "histogram bucket count disagrees with the maintenance options");
  }
  if (reservoir.capacity() < options.buckets) {
    return Status::InvalidArgument(
        "reservoir must hold at least one value per bucket");
  }
  IncrementalEquiDepth maintained(options, std::move(reservoir));
  maintained.n_ = histogram.total();
  maintained.min_value_ = histogram.lower_fence() + 1;
  maintained.max_value_ = histogram.upper_fence();
  maintained.separators_ = histogram.separators();
  maintained.counts_ = histogram.counts();
  maintained.initialized_ = true;
  return maintained;
}

IncrementalEquiDepth::IncrementalEquiDepth(const GmpOptions& options,
                                           BackingReservoir reservoir)
    : options_(options), reservoir_(std::move(reservoir)) {}

double IncrementalEquiDepth::Threshold() const {
  return (2.0 + options_.gamma) * static_cast<double>(n_) /
         static_cast<double>(options_.buckets);
}

std::uint64_t IncrementalEquiDepth::BucketIndexForValue(Value value) const {
  const auto it =
      std::lower_bound(separators_.begin(), separators_.end(), value);
  return static_cast<std::uint64_t>(it - separators_.begin());
}

bool IncrementalEquiDepth::MaintenanceDue() {
  // Maintenance is rate-limited to once per ~1% table growth: a value
  // heavier than the threshold keeps its bucket permanently over T (no
  // split can divide one value, and a recompute cannot cure it), and
  // without the cooldown every touch of that bucket would scan the
  // reservoir and recompute. The original algorithm assumes per-value
  // masses below T; the cooldown keeps maintenance O(1) amortized outside
  // that assumption at no accuracy cost.
  if (maintenance_ops_ < maintenance_cooldown_until_) return false;
  maintenance_cooldown_until_ =
      maintenance_ops_ + std::max<std::uint64_t>(n_ / 100, 16);
  return true;
}

void IncrementalEquiDepth::Insert(Value value) {
  reservoir_.Add(value);
  ++n_;
  ++maintenance_ops_;
  if (!initialized_) {
    min_value_ = value;
    max_value_ = value;
    separators_.assign(options_.buckets - 1, value);
    counts_.assign(options_.buckets, 0);
    counts_[0] = 1;
    initialized_ = true;
    return;
  }
  min_value_ = std::min(min_value_, value);
  max_value_ = std::max(max_value_, value);

  const std::uint64_t j = BucketIndexForValue(value);
  ++counts_[j];
  if (static_cast<double>(counts_[j]) <= Threshold()) return;

  // Split, funding the extra bucket by merging the lightest adjacent pair;
  // recompute from the backing sample when either step is impossible.
  if (!MaintenanceDue()) return;
  if (!TrySplit(j) || !TryMergeLightestPair()) {
    RecomputeFromSample();
  }
}

void IncrementalEquiDepth::Delete(Value value) {
  if (!initialized_ || n_ == 0) return;
  reservoir_.Delete(value);
  --n_;
  ++maintenance_ops_;
  const std::uint64_t j = BucketIndexForValue(value);
  if (counts_[j] > 0) --counts_[j];
  if (n_ == 0 || counts_.size() < 2) return;

  // Low-water check, the mirror image of the split threshold: a bucket
  // holding less than N / (B * (2 + gamma)) stops paying for its
  // separator, so fold it into its lighter neighbor and recover the B-th
  // bucket by splitting the heaviest one.
  const double low_water =
      static_cast<double>(n_) /
      (static_cast<double>(options_.buckets) * (2.0 + options_.gamma));
  if (static_cast<double>(counts_[j]) >= low_water) return;
  if (!MaintenanceDue()) return;

  const std::size_t left = (j == 0) ? 0 : j - 1;
  const bool merge_left =
      j > 0 && (j + 1 >= counts_.size() || counts_[j - 1] <= counts_[j + 1]);
  const std::size_t pair = merge_left ? left : j;
  counts_[pair] += counts_[pair + 1];
  counts_.erase(counts_.begin() + static_cast<std::ptrdiff_t>(pair) + 1);
  separators_.erase(separators_.begin() + static_cast<std::ptrdiff_t>(pair));
  ++merges_;

  const std::size_t heaviest = static_cast<std::size_t>(
      std::max_element(counts_.begin(), counts_.end()) - counts_.begin());
  if (!TrySplit(heaviest)) {
    RecomputeFromSample();
  }
}

bool IncrementalEquiDepth::TrySplit(std::uint64_t j) {
  // Approximate median of bucket j's contents from the backing sample.
  const Value lo = (j == 0) ? std::numeric_limits<Value>::min()
                            : separators_[j - 1];
  const Value hi = (j == counts_.size() - 1)
                       ? std::numeric_limits<Value>::max()
                       : separators_[j];
  std::vector<Value> in_bucket;
  for (Value v : reservoir_.sample()) {
    if (v > lo && v <= hi) in_bucket.push_back(v);
  }
  if (in_bucket.size() < 2) return false;
  std::sort(in_bucket.begin(), in_bucket.end());
  const Value median = in_bucket[in_bucket.size() / 2];
  // The split separator must divide the bucket into two non-trivial value
  // ranges; a median equal to the upper bound (all mass at the top value)
  // cannot.
  if (median >= hi || median <= lo) return false;

  // Estimate the left share from the backing sample.
  const auto left = static_cast<double>(
      std::upper_bound(in_bucket.begin(), in_bucket.end(), median) -
      in_bucket.begin());
  const double left_fraction = left / static_cast<double>(in_bucket.size());
  const auto left_count = static_cast<std::uint64_t>(
      left_fraction * static_cast<double>(counts_[j]));

  separators_.insert(separators_.begin() + static_cast<std::ptrdiff_t>(j),
                     median);
  const std::uint64_t right_count = counts_[j] - left_count;
  counts_[j] = left_count;
  counts_.insert(counts_.begin() + static_cast<std::ptrdiff_t>(j) + 1,
                 right_count);
  ++splits_;
  return true;
}

bool IncrementalEquiDepth::TryMergeLightestPair() {
  // counts_ currently holds B+1 buckets (after a split). Merge the
  // lightest adjacent pair whose combined count stays under the threshold.
  std::size_t best = counts_.size();
  std::uint64_t best_sum = std::numeric_limits<std::uint64_t>::max();
  for (std::size_t i = 0; i + 1 < counts_.size(); ++i) {
    const std::uint64_t sum = counts_[i] + counts_[i + 1];
    if (sum < best_sum) {
      best_sum = sum;
      best = i;
    }
  }
  if (best == counts_.size() ||
      static_cast<double>(best_sum) > Threshold()) {
    // Undo is unnecessary: the caller recomputes from the sample, which
    // rebuilds separators and counts wholesale.
    return false;
  }
  counts_[best] = best_sum;
  counts_.erase(counts_.begin() + static_cast<std::ptrdiff_t>(best) + 1);
  separators_.erase(separators_.begin() + static_cast<std::ptrdiff_t>(best));
  ++merges_;
  return true;
}

void IncrementalEquiDepth::RecomputeFromSample() {
  if (reservoir_.size() == 0) {
    // Counted-replacement deletes can drain the reservoir entirely; with
    // nothing to recompute from, keep serving the current (possibly
    // off-width) buckets — the owning manager's fill-fraction budget is
    // what forces the full rebuild in that regime.
    return;
  }
  ++recomputes_;
  const std::vector<Value> sample = reservoir_.SortedSample();
  auto histogram = BuildHistogramFromSample(sample, options_.buckets, n_);
  if (!histogram.ok()) {
    // Unreachable for a non-empty reservoir; an NDEBUG-blind assert here
    // would turn a failed build into a read of an empty Result.
    AbortOnStatus(histogram.status(), "IncrementalEquiDepth recompute");
  }
  separators_ = histogram->separators();
  counts_ = histogram->counts();
}

Result<Histogram> IncrementalEquiDepth::Snapshot() const {
  if (!initialized_) {
    return Status::FailedPrecondition("no values inserted yet");
  }
  std::vector<Value> separators = separators_;
  // Clamp separators into the observed domain so Histogram validation
  // holds even after recomputes from a sample that missed the extremes.
  for (Value& s : separators) {
    s = std::clamp(s, min_value_ - 1, max_value_);
  }
  return Histogram::Create(std::move(separators), counts_, min_value_ - 1,
                           max_value_);
}

}  // namespace equihist
