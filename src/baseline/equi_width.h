#ifndef EQUIHIST_BASELINE_EQUI_WIDTH_H_
#define EQUIHIST_BASELINE_EQUI_WIDTH_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/result.h"
#include "data/value_set.h"
#include "data/workload.h"

namespace equihist {

// The classical equi-width histogram: k buckets of equal *domain* width
// over [lo, hi]. Included as the baseline the equi-height family is always
// contrasted with — trivially cheap to build (one pass, no sort, no
// quantiles), but its bucket counts are unbounded functions of the data
// skew, so the paper's error guarantees are unattainable for it.
// bench_range_error quantifies the gap.
class EquiWidthHistogram {
 public:
  // Builds from the full data: exact counts per width bucket. k >= 1,
  // non-empty population.
  static Result<EquiWidthHistogram> Build(const ValueSet& population,
                                          std::uint64_t k);

  // Builds from a sorted sample with counts scaled to population_size.
  // The bucket *boundaries* require only the sample min/max, which is the
  // classical weakness: unseen extreme values fall outside every bucket.
  static Result<EquiWidthHistogram> BuildFromSample(
      std::span<const Value> sorted_sample, std::uint64_t k,
      std::uint64_t population_size);

  // Reassembles a histogram from its parts (used by deserialization and
  // the HistogramModel backend adapter): per-bucket counts over the domain
  // (lo, hi]. Requires at least one bucket and lo < hi; the total is the
  // sum of the counts.
  static Result<EquiWidthHistogram> FromParts(
      std::vector<std::uint64_t> counts, Value lo, Value hi);

  std::uint64_t bucket_count() const { return counts_.size(); }
  std::uint64_t total() const { return total_; }
  Value lo() const { return lo_; }
  Value hi() const { return hi_; }

  const std::vector<std::uint64_t>& counts() const { return counts_; }

  // Bucket index for a value, clamping values outside [lo, hi] into the
  // first/last bucket.
  std::uint64_t BucketIndexForValue(Value v) const;

  // Exclusive lower / inclusive upper bound of bucket j.
  Value BucketLowerBound(std::uint64_t j) const;
  Value BucketUpperBound(std::uint64_t j) const;

  // Range estimation, lo < X <= hi, with linear interpolation inside
  // buckets (same Section 2.2 strategy as the equi-height estimator).
  double EstimateRangeCount(const RangeQuery& query) const;

  std::string ToString(std::size_t max_buckets = 16) const;

 private:
  EquiWidthHistogram() = default;

  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  Value lo_ = 0;  // exclusive lower end of bucket 0
  Value hi_ = 0;  // inclusive upper end of bucket k-1
};

}  // namespace equihist

#endif  // EQUIHIST_BASELINE_EQUI_WIDTH_H_
