#include "baseline/serial_histograms.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "common/math.h"

namespace equihist {
namespace {

Status ValidateInputs(std::uint64_t d, std::uint64_t k) {
  if (k == 0) return Status::InvalidArgument("k must be at least 1");
  if (d == 0) {
    return Status::FailedPrecondition(
        "cannot build a histogram over an empty value set");
  }
  return Status::OK();
}

// Builds the Histogram for group boundaries expressed as the (0-based,
// inclusive) index of each group's last entry. Pads with empty trailing
// buckets when fewer than k groups exist.
Result<Histogram> FromGroupEnds(const FrequencyVector& frequencies,
                                std::vector<std::size_t> group_ends,
                                std::uint64_t k) {
  const auto& entries = frequencies.entries();
  std::vector<Value> separators;
  std::vector<std::uint64_t> counts;
  separators.reserve(k - 1);
  counts.reserve(k);
  std::size_t begin = 0;
  for (std::size_t g = 0; g < group_ends.size(); ++g) {
    const std::size_t end = group_ends[g];
    std::uint64_t sum = 0;
    for (std::size_t i = begin; i <= end; ++i) sum += entries[i].count;
    counts.push_back(sum);
    if (g + 1 < k) separators.push_back(entries[end].value);
    begin = end + 1;
  }
  while (counts.size() < k) {
    counts.push_back(0);
    if (separators.size() < k - 1) {
      separators.push_back(entries.back().value);
    }
  }
  return Histogram::Create(std::move(separators), std::move(counts),
                           entries.front().value - 1, entries.back().value);
}

// Scales a histogram's claimed counts to a new total (used by the
// sample-based builders).
Histogram ScaleClaimedCounts(const Histogram& histogram,
                             std::uint64_t new_total) {
  std::vector<double> weights;
  weights.reserve(histogram.counts().size());
  for (std::uint64_t c : histogram.counts()) {
    weights.push_back(static_cast<double>(c));
  }
  return Histogram::Create(histogram.separators(),
                           ApportionProportionally(weights, new_total),
                           histogram.lower_fence(), histogram.upper_fence())
      .value();
}

FrequencyVector FrequenciesOfSorted(std::span<const Value> sorted) {
  std::vector<FrequencyEntry> entries;
  for (std::size_t i = 0; i < sorted.size();) {
    std::size_t j = i;
    while (j < sorted.size() && sorted[j] == sorted[i]) ++j;
    entries.push_back(FrequencyEntry{sorted[i], j - i});
    i = j;
  }
  return FrequencyVector(std::move(entries));
}

}  // namespace

Result<Histogram> BuildVOptimalHistogram(const FrequencyVector& frequencies,
                                         std::uint64_t k) {
  EQUIHIST_RETURN_IF_ERROR(
      ValidateInputs(frequencies.distinct_count(), k));
  const auto& entries = frequencies.entries();
  const std::size_t d = entries.size();
  const std::size_t groups = std::min<std::size_t>(d, k);

  // Prefix sums of frequencies and squared frequencies for O(1) group SSE:
  // sse(a..b) = S2 - S1^2 / len.
  std::vector<double> s1(d + 1, 0.0);
  std::vector<double> s2(d + 1, 0.0);
  for (std::size_t i = 0; i < d; ++i) {
    const auto f = static_cast<double>(entries[i].count);
    s1[i + 1] = s1[i] + f;
    s2[i + 1] = s2[i] + f * f;
  }
  auto sse = [&](std::size_t a, std::size_t b) {  // inclusive indices
    const double len = static_cast<double>(b - a + 1);
    const double sum = s1[b + 1] - s1[a];
    const double sq = s2[b + 1] - s2[a];
    return sq - sum * sum / len;
  };

  // dp[i] = cost of optimally covering entries [0..i] with the current
  // number of groups; parent[g][i] = start of the last group.
  constexpr double kInf = 1e300;
  std::vector<double> prev(d, 0.0);
  std::vector<double> curr(d, kInf);
  std::vector<std::vector<std::uint32_t>> parent(
      groups, std::vector<std::uint32_t>(d, 0));
  for (std::size_t i = 0; i < d; ++i) prev[i] = sse(0, i);
  for (std::size_t g = 1; g < groups; ++g) {
    for (std::size_t i = g; i < d; ++i) {
      double best = kInf;
      std::uint32_t best_start = static_cast<std::uint32_t>(i);
      for (std::size_t m = g; m <= i; ++m) {
        const double cost = prev[m - 1] + sse(m, i);
        if (cost < best) {
          best = cost;
          best_start = static_cast<std::uint32_t>(m);
        }
      }
      curr[i] = best;
      parent[g][i] = best_start;
    }
    std::swap(prev, curr);
    std::fill(curr.begin(), curr.end(), kInf);
  }

  // Reconstruct the group ends.
  std::vector<std::size_t> ends(groups);
  std::size_t end = d - 1;
  for (std::size_t g = groups; g-- > 0;) {
    ends[g] = end;
    if (g == 0) break;
    const std::size_t start = parent[g][end];
    end = start - 1;
  }
  return FromGroupEnds(frequencies, std::move(ends), k);
}

Result<Histogram> BuildVOptimalFromSample(std::span<const Value> sorted_sample,
                                          std::uint64_t k,
                                          std::uint64_t population_size) {
  if (population_size == 0) {
    return Status::InvalidArgument("population_size must be positive");
  }
  if (sorted_sample.empty()) {
    return Status::FailedPrecondition("sample must be non-empty");
  }
  EQUIHIST_ASSIGN_OR_RETURN(
      const Histogram from_sample,
      BuildVOptimalHistogram(FrequenciesOfSorted(sorted_sample), k));
  return ScaleClaimedCounts(from_sample, population_size);
}

Result<Histogram> BuildMaxDiffHistogram(const FrequencyVector& frequencies,
                                        std::uint64_t k) {
  EQUIHIST_RETURN_IF_ERROR(ValidateInputs(frequencies.distinct_count(), k));
  const auto& entries = frequencies.entries();
  const std::size_t d = entries.size();

  // Rank the adjacent frequency differences; boundaries go after the
  // positions with the k-1 largest |f_{i+1} - f_i|.
  std::vector<std::pair<double, std::size_t>> diffs;
  diffs.reserve(d > 0 ? d - 1 : 0);
  for (std::size_t i = 0; i + 1 < d; ++i) {
    const double diff =
        std::abs(static_cast<double>(entries[i + 1].count) -
                 static_cast<double>(entries[i].count));
    diffs.emplace_back(diff, i);
  }
  std::sort(diffs.begin(), diffs.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });
  const std::size_t boundaries = std::min<std::size_t>(k - 1, diffs.size());
  std::vector<std::size_t> ends;
  ends.reserve(boundaries + 1);
  for (std::size_t i = 0; i < boundaries; ++i) {
    ends.push_back(diffs[i].second);
  }
  std::sort(ends.begin(), ends.end());
  ends.push_back(d - 1);
  return FromGroupEnds(frequencies, std::move(ends), k);
}

Result<Histogram> BuildMaxDiffFromSample(std::span<const Value> sorted_sample,
                                         std::uint64_t k,
                                         std::uint64_t population_size) {
  if (population_size == 0) {
    return Status::InvalidArgument("population_size must be positive");
  }
  if (sorted_sample.empty()) {
    return Status::FailedPrecondition("sample must be non-empty");
  }
  EQUIHIST_ASSIGN_OR_RETURN(
      const Histogram from_sample,
      BuildMaxDiffHistogram(FrequenciesOfSorted(sorted_sample), k));
  return ScaleClaimedCounts(from_sample, population_size);
}

double FrequencyVarianceObjective(const Histogram& histogram,
                                  const FrequencyVector& frequencies) {
  const auto& entries = frequencies.entries();
  KahanSum total;
  std::size_t i = 0;
  for (std::uint64_t b = 0; b < histogram.bucket_count(); ++b) {
    // Collect the frequencies of the distinct values in bucket b.
    std::vector<double> fs;
    while (i < entries.size() &&
           histogram.BucketIndexForValue(entries[i].value) == b) {
      fs.push_back(static_cast<double>(entries[i].count));
      ++i;
    }
    if (fs.empty()) continue;
    const double mean = Mean(fs);
    for (double f : fs) total.Add((f - mean) * (f - mean));
  }
  return total.Value();
}

}  // namespace equihist
