#ifndef EQUIHIST_STORAGE_SCAN_H_
#define EQUIHIST_STORAGE_SCAN_H_

#include <vector>

#include "common/thread_pool.h"
#include "data/distribution.h"
#include "storage/io_stats.h"
#include "storage/table.h"

namespace equihist {

// Full sequential scan: reads every page, charging all I/O to `stats`.
// This is the cost baseline the sampling access paths are measured against
// (a perfect histogram requires exactly this scan plus a sort).
std::vector<Value> FullScan(const Table& table, IoStats* stats);

// Pool-backed variant: page ranges are read concurrently into precomputed
// offsets (pages are densely packed, so every page's destination is known
// up front). Output and charged IoStats are identical to FullScan for any
// thread count; with a null pool it is FullScan.
std::vector<Value> FullScan(const Table& table, IoStats* stats,
                            ThreadPool* pool);

}  // namespace equihist

#endif  // EQUIHIST_STORAGE_SCAN_H_
