#ifndef EQUIHIST_STORAGE_SCAN_H_
#define EQUIHIST_STORAGE_SCAN_H_

#include <vector>

#include "common/result.h"
#include "common/retry.h"
#include "common/thread_pool.h"
#include "data/distribution.h"
#include "storage/io_stats.h"
#include "storage/table.h"

namespace equihist {

// Full sequential scan: reads every page, charging all I/O to `stats`.
// This is the cost baseline the sampling access paths are measured against
// (a perfect histogram requires exactly this scan plus a sort).
//
// These overloads assume fault-free storage (no injector, or one that
// never fires): a read failure is a programming error and aborts. The
// statistics pipeline goes through FullScanChecked below, which retries
// transient faults and propagates permanent ones as typed errors — a full
// scan cannot substitute another page for a lost one, so unlike the block
// samplers it has no resample path.
std::vector<Value> FullScan(const Table& table, IoStats* stats);

// Pool-backed variant: page ranges are read concurrently into precomputed
// offsets (pages are densely packed, so every page's destination is known
// up front). Output and charged IoStats are identical to FullScan for any
// thread count; with a null pool it is FullScan.
std::vector<Value> FullScan(const Table& table, IoStats* stats,
                            ThreadPool* pool);

// Fault-aware full scan: transient read errors are retried per `policy`
// (charged to stats->transient_retries); a page that stays unreadable
// fails the scan with the page's kDataLoss/kUnavailable status — by the
// lowest failing page id, so the error is deterministic at any thread
// count. Fault-free tables return exactly FullScan's output and I/O bill.
Result<std::vector<Value>> FullScanChecked(const Table& table, IoStats* stats,
                                           ThreadPool* pool = nullptr,
                                           const RetryPolicy& policy = {});

}  // namespace equihist

#endif  // EQUIHIST_STORAGE_SCAN_H_
