#include "storage/page.h"

namespace equihist {

Status ValidatePageConfig(const PageConfig& config) {
  if (config.page_size_bytes == 0) {
    return Status::InvalidArgument("page_size_bytes must be positive");
  }
  if (config.record_size_bytes == 0) {
    return Status::InvalidArgument("record_size_bytes must be positive");
  }
  if (config.record_size_bytes > config.page_size_bytes) {
    return Status::InvalidArgument(
        "record_size_bytes must not exceed page_size_bytes");
  }
  return Status::OK();
}

}  // namespace equihist
