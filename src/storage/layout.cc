#include "storage/layout.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "data/generator.h"

namespace equihist {

std::string_view LayoutKindToString(LayoutKind kind) {
  switch (kind) {
    case LayoutKind::kRandom:
      return "random";
    case LayoutKind::kSorted:
      return "sorted";
    case LayoutKind::kPartiallyClustered:
      return "partially-clustered";
  }
  return "unknown";
}

namespace {

// Implements the paper's partially clustered generator: every tuple gets a
// synthetic tuple-id; for each distinct value, a `clustered_fraction` share
// of its duplicates receives one shared id (so they sort together), the
// remainder receive individual random ids. The file is then "clustered on
// tuple-id", i.e. sorted by id.
std::vector<Value> PartiallyClustered(const FrequencyVector& frequencies,
                                      double clustered_fraction,
                                      std::uint64_t seed) {
  Rng rng(seed);
  struct Keyed {
    std::uint64_t key;
    Value value;
  };
  std::vector<Keyed> keyed;
  keyed.reserve(frequencies.total_count());
  for (const FrequencyEntry& entry : frequencies.entries()) {
    const auto clustered = static_cast<std::uint64_t>(
        std::llround(clustered_fraction * static_cast<double>(entry.count)));
    const std::uint64_t shared_key = rng.Next();
    for (std::uint64_t i = 0; i < entry.count; ++i) {
      const std::uint64_t key = (i < clustered) ? shared_key : rng.Next();
      keyed.push_back(Keyed{key, entry.value});
    }
  }
  std::stable_sort(keyed.begin(), keyed.end(),
                   [](const Keyed& a, const Keyed& b) { return a.key < b.key; });
  std::vector<Value> out;
  out.reserve(keyed.size());
  for (const Keyed& k : keyed) out.push_back(k.value);
  return out;
}

}  // namespace

Result<std::vector<Value>> ApplyLayout(const FrequencyVector& frequencies,
                                       const LayoutSpec& spec) {
  if (frequencies.empty()) {
    return Status::InvalidArgument("cannot lay out an empty column");
  }
  switch (spec.kind) {
    case LayoutKind::kRandom:
      return ExpandShuffled(frequencies, spec.seed);
    case LayoutKind::kSorted:
      return ExpandSorted(frequencies);
    case LayoutKind::kPartiallyClustered:
      if (spec.clustered_fraction < 0.0 || spec.clustered_fraction > 1.0) {
        return Status::InvalidArgument(
            "clustered_fraction must be in [0, 1]");
      }
      return PartiallyClustered(frequencies, spec.clustered_fraction,
                                spec.seed);
  }
  return Status::InvalidArgument("unknown layout kind");
}

}  // namespace equihist
