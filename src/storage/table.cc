#include "storage/table.h"

namespace equihist {

Result<Table> Table::Create(const FrequencyVector& frequencies,
                            const PageConfig& page_config,
                            const LayoutSpec& layout) {
  EQUIHIST_RETURN_IF_ERROR(ValidatePageConfig(page_config));
  EQUIHIST_ASSIGN_OR_RETURN(std::vector<Value> values,
                            ApplyLayout(frequencies, layout));
  return CreateFromValues(std::move(values), page_config);
}

Result<Table> Table::CreateFromValues(std::vector<Value> values,
                                      const PageConfig& page_config) {
  EQUIHIST_RETURN_IF_ERROR(ValidatePageConfig(page_config));
  if (values.empty()) {
    return Status::InvalidArgument("cannot create an empty table");
  }
  auto file = std::make_unique<HeapFile>(page_config);
  file->AppendAll(values);
  return Table(std::move(file));
}

}  // namespace equihist
