#ifndef EQUIHIST_STORAGE_HEAP_FILE_H_
#define EQUIHIST_STORAGE_HEAP_FILE_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/retry.h"
#include "storage/io_stats.h"
#include "storage/page.h"

namespace equihist {

class FaultInjector;

// An append-only heap file of fixed-geometry pages, the unit the block
// samplers draw from. Pages are filled densely in append order, so the
// tuple order handed to Append*() *is* the on-disk clustering — layout
// policies (storage/layout.h) decide that order before the file is built.
class HeapFile {
 public:
  explicit HeapFile(const PageConfig& config);

  const PageConfig& config() const { return config_; }
  std::uint64_t page_count() const { return pages_.size(); }
  std::uint64_t tuple_count() const { return tuple_count_; }
  bool empty() const { return tuple_count_ == 0; }

  // Appends one record, opening a new page when the last one is full.
  void Append(Value value);

  // Bulk-append in order.
  void AppendAll(const std::vector<Value>& values);

  // Read access to page `page_id`, charging one page read (and the page's
  // tuples) to `stats` if provided. Returns NotFound for out-of-range ids.
  //
  // With a fault injector attached the read may instead return
  // kUnavailable (injected transient fault) or kDataLoss (lost page, or a
  // corrupted payload caught by the page checksum); successful reads of
  // latency-selected pages stall for the injected delay first. Without an
  // injector the fault path is a single null-pointer test — reads cannot
  // fail for in-range ids and pay nothing for the hooks.
  Result<const Page*> ReadPage(std::uint64_t page_id, IoStats* stats) const;

  // ReadPage wrapped in the shared bounded-retry policy: transient faults
  // are re-issued per `policy` (each retry charged to
  // stats->transient_retries); permanent faults return immediately.
  Result<const Page*> ReadPageRetrying(std::uint64_t page_id,
                                       const RetryPolicy& policy,
                                       IoStats* stats) const;

  // Attaches (or clears, with nullptr) a fault injector. The injector must
  // outlive all reads; attaching is not synchronized against concurrent
  // reads, so do it before the file is shared across threads.
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }
  FaultInjector* fault_injector() const { return injector_; }

  // Direct (uncharged) structural access for tests and internal use.
  const Page& page(std::uint64_t page_id) const { return pages_[page_id]; }

 private:
  PageConfig config_;
  std::uint32_t tuples_per_page_;
  std::vector<Page> pages_;
  std::uint64_t tuple_count_ = 0;
  FaultInjector* injector_ = nullptr;
};

}  // namespace equihist

#endif  // EQUIHIST_STORAGE_HEAP_FILE_H_
