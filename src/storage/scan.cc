#include "storage/scan.h"

namespace equihist {

std::vector<Value> FullScan(const Table& table, IoStats* stats) {
  Result<std::vector<Value>> values =
      FullScanChecked(table, stats, /*pool=*/nullptr);
  if (!values.ok()) {
    AbortOnStatus(values.status(),
                  "FullScan on faulty storage (use FullScanChecked)");
  }
  return std::move(values).value();
}

std::vector<Value> FullScan(const Table& table, IoStats* stats,
                            ThreadPool* pool) {
  Result<std::vector<Value>> values = FullScanChecked(table, stats, pool);
  if (!values.ok()) {
    AbortOnStatus(values.status(),
                  "FullScan on faulty storage (use FullScanChecked)");
  }
  return std::move(values).value();
}

Result<std::vector<Value>> FullScanChecked(const Table& table, IoStats* stats,
                                           ThreadPool* pool,
                                           const RetryPolicy& policy) {
  const std::uint64_t pages = table.page_count();
  if (pool == nullptr || pool->size() <= 1) {
    std::vector<Value> values;
    values.reserve(table.tuple_count());
    for (std::uint64_t page_id = 0; page_id < pages; ++page_id) {
      EQUIHIST_ASSIGN_OR_RETURN(
          const Page* page,
          table.file().ReadPageRetrying(page_id, policy, stats));
      for (Value v : page->values()) values.push_back(v);
    }
    return values;
  }

  const std::uint32_t tpp = table.tuples_per_page();
  std::vector<Value> values(table.tuple_count());
  const std::size_t shards = pool->size();
  std::vector<IoStats> shard_stats(shards);
  // First failing page per shard; the lowest page id wins afterwards so
  // the reported error does not depend on thread scheduling.
  std::vector<std::uint64_t> failed_page(shards, pages);
  std::vector<Status> failed_status(shards);
  pool->ParallelFor(
      0, pages, shards, [&](std::size_t lo, std::size_t hi, std::size_t s) {
        IoStats& local = shard_stats[s];
        for (std::size_t page_id = lo; page_id < hi; ++page_id) {
          Result<const Page*> page =
              table.file().ReadPageRetrying(page_id, policy, &local);
          if (!page.ok()) {
            if (page_id < failed_page[s]) {
              failed_page[s] = page_id;
              failed_status[s] = page.status();
            }
            continue;
          }
          const auto page_values = (*page)->values();
          // Dense packing: page p starts at tuple p * tuples_per_page.
          std::copy(page_values.begin(), page_values.end(),
                    values.begin() + static_cast<std::ptrdiff_t>(
                                         page_id * tpp));
        }
      });
  if (stats != nullptr) {
    for (const IoStats& s : shard_stats) *stats += s;
  }
  std::size_t worst = shards;
  for (std::size_t s = 0; s < shards; ++s) {
    if (failed_page[s] < pages &&
        (worst == shards || failed_page[s] < failed_page[worst])) {
      worst = s;
    }
  }
  if (worst != shards) return failed_status[worst];
  return values;
}

}  // namespace equihist
