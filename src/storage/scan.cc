#include "storage/scan.h"

#include <cassert>

namespace equihist {

std::vector<Value> FullScan(const Table& table, IoStats* stats) {
  std::vector<Value> values;
  values.reserve(table.tuple_count());
  for (std::uint64_t page_id = 0; page_id < table.page_count(); ++page_id) {
    Result<const Page*> page = table.file().ReadPage(page_id, stats);
    assert(page.ok());
    for (Value v : (*page)->values()) values.push_back(v);
  }
  return values;
}

std::vector<Value> FullScan(const Table& table, IoStats* stats,
                            ThreadPool* pool) {
  if (pool == nullptr || pool->size() <= 1) return FullScan(table, stats);
  const std::uint64_t pages = table.page_count();
  const std::uint32_t tpp = table.tuples_per_page();
  std::vector<Value> values(table.tuple_count());
  const std::size_t shards = pool->size();
  std::vector<IoStats> shard_stats(shards);
  pool->ParallelFor(
      0, pages, shards, [&](std::size_t lo, std::size_t hi, std::size_t s) {
        IoStats& local = shard_stats[s];
        for (std::size_t page_id = lo; page_id < hi; ++page_id) {
          Result<const Page*> page = table.file().ReadPage(page_id, &local);
          assert(page.ok());
          const auto page_values = (*page)->values();
          // Dense packing: page p starts at tuple p * tuples_per_page.
          std::copy(page_values.begin(), page_values.end(),
                    values.begin() + static_cast<std::ptrdiff_t>(
                                         page_id * tpp));
        }
      });
  if (stats != nullptr) {
    for (const IoStats& s : shard_stats) *stats += s;
  }
  return values;
}

}  // namespace equihist
