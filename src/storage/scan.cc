#include "storage/scan.h"

#include <cassert>

namespace equihist {

std::vector<Value> FullScan(const Table& table, IoStats* stats) {
  std::vector<Value> values;
  values.reserve(table.tuple_count());
  for (std::uint64_t page_id = 0; page_id < table.page_count(); ++page_id) {
    Result<const Page*> page = table.file().ReadPage(page_id, stats);
    assert(page.ok());
    for (Value v : (*page)->values()) values.push_back(v);
  }
  return values;
}

}  // namespace equihist
