#include "storage/heap_file.h"

#include <cassert>
#include <chrono>
#include <string>
#include <thread>

#include "storage/fault_injection.h"

namespace equihist {

HeapFile::HeapFile(const PageConfig& config)
    : config_(config), tuples_per_page_(config.TuplesPerPage()) {
  // Enforced in every build mode: under NDEBUG an assert would skip the
  // check and let a zero-tuple geometry divide by zero later. Fallible
  // callers validate first (Table::Create); reaching here with a bad
  // config is direct constructor misuse.
  const Status config_status = ValidatePageConfig(config);
  if (!config_status.ok()) {
    AbortOnStatus(config_status, "HeapFile: invalid PageConfig");
  }
}

void HeapFile::Append(Value value) {
  if (pages_.empty() || pages_.back().full()) {
    pages_.emplace_back(tuples_per_page_);
  }
  const bool appended = pages_.back().Append(value);
  assert(appended);
  (void)appended;
  ++tuple_count_;
}

void HeapFile::AppendAll(const std::vector<Value>& values) {
  pages_.reserve(pages_.size() +
                 (values.size() + tuples_per_page_ - 1) / tuples_per_page_);
  for (Value v : values) Append(v);
}

Result<const Page*> HeapFile::ReadPage(std::uint64_t page_id,
                                       IoStats* stats) const {
  if (page_id >= pages_.size()) {
    return Status::NotFound("page id out of range");
  }
  const Page* page = &pages_[page_id];
  if (injector_ != nullptr) {
    switch (injector_->Decide(page_id)) {
      case FaultKind::kNone:
        break;
      case FaultKind::kTransient:
        return Status::Unavailable("injected transient read error on page " +
                                   std::to_string(page_id));
      case FaultKind::kLost:
        return Status::DataLoss("page " + std::to_string(page_id) +
                                " is unreadable (lost)");
      case FaultKind::kCorrupt:
        // The injector hands back a payload whose bytes no longer match
        // the stored checksum; the verification below is the detection a
        // real engine performs on every page it trusts.
        page = injector_->CorruptedCopy(page_id, pages_[page_id]);
        break;
    }
    if (!page->ChecksumOk()) {
      return Status::DataLoss("page " + std::to_string(page_id) +
                              " failed checksum verification");
    }
    if (injector_->InjectsLatency(page_id)) {
      injector_->RecordLatencyInjected();
      std::this_thread::sleep_for(
          std::chrono::microseconds(injector_->latency_micros()));
    }
  }
  if (stats != nullptr) {
    stats->pages_read += 1;
    stats->tuples_read += page->size();
  }
  return page;
}

Result<const Page*> HeapFile::ReadPageRetrying(std::uint64_t page_id,
                                               const RetryPolicy& policy,
                                               IoStats* stats) const {
  std::uint64_t retries = 0;
  Result<const Page*> result = RetryTransient(
      policy, [&]() { return ReadPage(page_id, stats); }, &retries);
  if (stats != nullptr) stats->transient_retries += retries;
  return result;
}

}  // namespace equihist
