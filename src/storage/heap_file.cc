#include "storage/heap_file.h"

#include <cassert>

namespace equihist {

HeapFile::HeapFile(const PageConfig& config)
    : config_(config), tuples_per_page_(config.TuplesPerPage()) {
  assert(ValidatePageConfig(config).ok());
}

void HeapFile::Append(Value value) {
  if (pages_.empty() || pages_.back().full()) {
    pages_.emplace_back(tuples_per_page_);
  }
  const bool appended = pages_.back().Append(value);
  assert(appended);
  (void)appended;
  ++tuple_count_;
}

void HeapFile::AppendAll(const std::vector<Value>& values) {
  pages_.reserve(pages_.size() +
                 (values.size() + tuples_per_page_ - 1) / tuples_per_page_);
  for (Value v : values) Append(v);
}

Result<const Page*> HeapFile::ReadPage(std::uint64_t page_id,
                                       IoStats* stats) const {
  if (page_id >= pages_.size()) {
    return Status::NotFound("page id out of range");
  }
  const Page& page = pages_[page_id];
  if (stats != nullptr) {
    stats->pages_read += 1;
    stats->tuples_read += page.size();
  }
  return &page;
}

}  // namespace equihist
