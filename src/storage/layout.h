#ifndef EQUIHIST_STORAGE_LAYOUT_H_
#define EQUIHIST_STORAGE_LAYOUT_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "data/distribution.h"

namespace equihist {

// On-disk tuple orderings studied in Sections 4 and 7. Block-level sampling
// is sensitive to how values are clustered into pages; these policies
// reproduce the paper's layouts (Section 7.1 "Data Generation"):
//
//   kRandom             tuples clustered on randomly generated tuple-ids,
//                       i.e. value order is uncorrelated with page order
//                       (scenario (a) of Section 4.1).
//   kSorted             the file is sorted on the studied attribute — the
//                       fully correlated worst case (scenario (b)).
//   kPartiallyClustered a fraction of each value's duplicates share one
//                       tuple-id and therefore land contiguously; the rest
//                       are placed randomly (the paper's 80/20 layout,
//                       scenario (c)).
enum class LayoutKind {
  kRandom,
  kSorted,
  kPartiallyClustered,
};

std::string_view LayoutKindToString(LayoutKind kind);

struct LayoutSpec {
  LayoutKind kind = LayoutKind::kRandom;
  // Only for kPartiallyClustered: the fraction of each distinct value's
  // duplicates that is placed contiguously. The paper uses 0.2.
  double clustered_fraction = 0.2;
  std::uint64_t seed = 7;
};

// Produces the on-disk tuple order for a column with the given frequency
// content under the given layout. The result feeds Table::Create /
// HeapFile::AppendAll. Returns InvalidArgument for a bad clustered_fraction.
Result<std::vector<Value>> ApplyLayout(const FrequencyVector& frequencies,
                                       const LayoutSpec& spec);

}  // namespace equihist

#endif  // EQUIHIST_STORAGE_LAYOUT_H_
