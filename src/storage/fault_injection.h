#ifndef EQUIHIST_STORAGE_FAULT_INJECTION_H_
#define EQUIHIST_STORAGE_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/annotations.h"
#include "common/mutex.h"
#include "common/status.h"
#include "storage/page.h"

namespace equihist {

// Deterministic storage fault injection — the test substrate for the
// fault-tolerance layer (DESIGN.md §11). A FaultInjector attached to a
// HeapFile (HeapFile::set_fault_injector) decides, per read attempt, what
// the simulated disk does:
//
//   kTransient — the read fails with kUnavailable; after the configured
//                number of failed attempts the page reads fine. Models
//                intermittent I/O errors a retry clears.
//   kLost      — the read fails with kDataLoss, always. Models a
//                permanently unreadable block.
//   kCorrupt   — the read returns a payload whose bytes were flipped
//                after the checksum was recorded; the reading HeapFile
//                detects the mismatch and surfaces kDataLoss. Models
//                silent media corruption caught by page checksums.
//   latency    — the read succeeds after a fixed injected delay
//                (orthogonal to the three error kinds).
//
// Decisions are driven by per-kind probabilities hashed from
// (seed, page_id) — never from attempt order or thread interleaving, so a
// given (spec, table) produces the same fault set at any thread count —
// plus explicit page-id trigger lists for exact, non-flaky tests. A page
// named in a trigger list faults regardless of its hash; the probability
// knobs layer on top for randomized chaos runs.
//
// The injector is safe for concurrent use: the parallel block readers hit
// it from every pool worker.

enum class FaultKind {
  kNone = 0,
  kTransient,
  kLost,
  kCorrupt,
};

struct FaultSpec {
  // Per-read-kind probabilities in [0, 1], evaluated per page (not per
  // attempt) via a (seed, page_id, kind) hash. A page can satisfy several;
  // precedence is lost > corrupt > transient, so probabilistic specs stay
  // deterministic.
  double transient_probability = 0.0;
  double lost_probability = 0.0;
  double corrupt_probability = 0.0;
  double latency_probability = 0.0;

  // Explicit page-id triggers (exact tests). Order is irrelevant.
  std::vector<std::uint64_t> transient_pages{};
  std::vector<std::uint64_t> lost_pages{};
  std::vector<std::uint64_t> corrupt_pages{};

  // How many read attempts of a transient page fail before it succeeds.
  std::uint32_t transient_failures_per_page = 1;

  // Injected delay for latency-selected pages.
  std::uint64_t latency_micros = 0;

  // Seed for the probabilistic decisions and the corruption masks.
  std::uint64_t seed = 0;
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultSpec spec);

  const FaultSpec& spec() const { return spec_; }

  // The fault this read attempt of `page_id` experiences. Transient pages
  // consume one failed attempt per kTransient returned; once a page's
  // failures are exhausted, subsequent attempts return kNone.
  FaultKind Decide(std::uint64_t page_id);

  // True if reads of `page_id` carry injected latency.
  bool InjectsLatency(std::uint64_t page_id) const;
  std::uint64_t latency_micros() const { return spec_.latency_micros; }

  // A stable corrupted copy of `page`: payload bits flipped (seed-derived
  // slot and mask), stored checksum intact, so ChecksumOk() is false. The
  // copy is cached per page id; the pointer stays valid for the injector's
  // lifetime.
  const Page* CorruptedCopy(std::uint64_t page_id, const Page& page);

  // -- Injection counters (what actually fired) -----------------------------
  std::uint64_t transient_injected() const {
    return transient_injected_.load(std::memory_order_relaxed);
  }
  std::uint64_t lost_injected() const {
    return lost_injected_.load(std::memory_order_relaxed);
  }
  std::uint64_t corrupt_injected() const {
    return corrupt_injected_.load(std::memory_order_relaxed);
  }
  std::uint64_t latency_injected() const {
    return latency_injected_.load(std::memory_order_relaxed);
  }
  void RecordLatencyInjected() {
    latency_injected_.fetch_add(1, std::memory_order_relaxed);
  }

 private:
  // Whether the (seed, page_id, kind) hash selects the page under
  // probability `p`.
  bool HashSelects(std::uint64_t page_id, std::uint32_t kind_tag,
                   double p) const;
  // The page's static fault class, ignoring transient attempt counting.
  FaultKind Classify(std::uint64_t page_id) const;

  FaultSpec spec_;
  std::unordered_set<std::uint64_t> transient_set_;
  std::unordered_set<std::uint64_t> lost_set_;
  std::unordered_set<std::uint64_t> corrupt_set_;

  Mutex mu_{lockrank::kFaultInjector};
  std::unordered_map<std::uint64_t, std::uint32_t> transient_failures_
      GUARDED_BY(mu_);
  std::unordered_map<std::uint64_t, std::unique_ptr<Page>> corrupted_
      GUARDED_BY(mu_);

  std::atomic<std::uint64_t> transient_injected_{0};
  std::atomic<std::uint64_t> lost_injected_{0};
  std::atomic<std::uint64_t> corrupt_injected_{0};
  std::atomic<std::uint64_t> latency_injected_{0};
};

}  // namespace equihist

#endif  // EQUIHIST_STORAGE_FAULT_INJECTION_H_
