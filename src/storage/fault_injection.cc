#include "storage/fault_injection.h"

#include <utility>

namespace equihist {
namespace {

// SplitMix64 finalizer: the same platform-stable mixer the RNG seeding
// uses, applied to (seed, page_id, kind) so every decision is a pure
// function of the spec and the page.
std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

std::uint64_t HashDecision(std::uint64_t seed, std::uint64_t page_id,
                           std::uint32_t kind_tag) {
  return Mix64(Mix64(seed ^ (0xA0761D6478BD642FULL + kind_tag)) ^ page_id);
}

}  // namespace

FaultInjector::FaultInjector(FaultSpec spec)
    : spec_(std::move(spec)),
      transient_set_(spec_.transient_pages.begin(),
                     spec_.transient_pages.end()),
      lost_set_(spec_.lost_pages.begin(), spec_.lost_pages.end()),
      corrupt_set_(spec_.corrupt_pages.begin(), spec_.corrupt_pages.end()) {}

bool FaultInjector::HashSelects(std::uint64_t page_id, std::uint32_t kind_tag,
                                double p) const {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  const double u =
      static_cast<double>(HashDecision(spec_.seed, page_id, kind_tag) >> 11) *
      0x1.0p-53;
  return u < p;
}

FaultKind FaultInjector::Classify(std::uint64_t page_id) const {
  // Explicit triggers first, then probabilities; lost > corrupt > transient
  // keeps overlapping selections deterministic.
  if (lost_set_.count(page_id) != 0 ||
      HashSelects(page_id, 1, spec_.lost_probability)) {
    return FaultKind::kLost;
  }
  if (corrupt_set_.count(page_id) != 0 ||
      HashSelects(page_id, 2, spec_.corrupt_probability)) {
    return FaultKind::kCorrupt;
  }
  if (transient_set_.count(page_id) != 0 ||
      HashSelects(page_id, 3, spec_.transient_probability)) {
    return FaultKind::kTransient;
  }
  return FaultKind::kNone;
}

FaultKind FaultInjector::Decide(std::uint64_t page_id) {
  switch (Classify(page_id)) {
    case FaultKind::kNone:
      return FaultKind::kNone;
    case FaultKind::kLost:
      lost_injected_.fetch_add(1, std::memory_order_relaxed);
      return FaultKind::kLost;
    case FaultKind::kCorrupt:
      corrupt_injected_.fetch_add(1, std::memory_order_relaxed);
      return FaultKind::kCorrupt;
    case FaultKind::kTransient:
      break;
  }
  // Transient pages fail a bounded number of attempts, then heal. The
  // counter is per page, so retries of different pages never interact.
  {
    MutexLock lock(mu_);
    std::uint32_t& failed = transient_failures_[page_id];
    if (failed >= spec_.transient_failures_per_page) return FaultKind::kNone;
    ++failed;
  }
  transient_injected_.fetch_add(1, std::memory_order_relaxed);
  return FaultKind::kTransient;
}

bool FaultInjector::InjectsLatency(std::uint64_t page_id) const {
  if (spec_.latency_micros == 0) return false;
  return HashSelects(page_id, 4, spec_.latency_probability);
}

const Page* FaultInjector::CorruptedCopy(std::uint64_t page_id,
                                         const Page& page) {
  MutexLock lock(mu_);
  auto it = corrupted_.find(page_id);
  if (it == corrupted_.end()) {
    auto copy = std::make_unique<Page>(page);
    if (copy->size() > 0) {
      const std::uint64_t h = HashDecision(spec_.seed, page_id, 5);
      const auto slot = static_cast<std::uint32_t>(h % copy->size());
      // A nonzero mask guarantees the payload really changes, so the
      // stored checksum no longer matches.
      const Value mask = static_cast<Value>(h | 1);
      copy->CorruptValue(slot, mask);
    }
    it = corrupted_.emplace(page_id, std::move(copy)).first;
  }
  return it->second.get();
}

}  // namespace equihist
