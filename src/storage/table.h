#ifndef EQUIHIST_STORAGE_TABLE_H_
#define EQUIHIST_STORAGE_TABLE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/result.h"
#include "data/distribution.h"
#include "storage/heap_file.h"
#include "storage/layout.h"
#include "storage/page.h"

namespace equihist {

// A single-attribute relation stored in a paged heap file: the substrate all
// experiments run against. Construction fixes the page geometry and the
// on-disk layout; after that the table is immutable.
//
// Typical construction:
//   auto freq = MakeZipf({.n = 10'000'000, .domain_size = 50'000, .skew = 2});
//   auto table = Table::Create(*freq, PageConfig{8192, 64},
//                              LayoutSpec{LayoutKind::kRandom});
class Table {
 public:
  // Builds a table by laying out `frequencies` per `layout` and packing the
  // resulting tuple order into pages of the given geometry.
  static Result<Table> Create(const FrequencyVector& frequencies,
                              const PageConfig& page_config,
                              const LayoutSpec& layout);

  // Builds a table from an explicit tuple order (already laid out).
  static Result<Table> CreateFromValues(std::vector<Value> values,
                                        const PageConfig& page_config);

  Table(Table&&) noexcept = default;
  Table& operator=(Table&&) noexcept = default;
  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  const HeapFile& file() const { return *file_; }

  // Attaches a fault injector to the underlying heap file (nullptr
  // detaches). The injector must outlive every read; attach before the
  // table is shared across threads. With no injector attached the read
  // path is exactly the fault-free one.
  void set_fault_injector(FaultInjector* injector) {
    file_->set_fault_injector(injector);
  }

  const PageConfig& page_config() const { return file_->config(); }
  std::uint64_t tuple_count() const { return file_->tuple_count(); }
  std::uint64_t page_count() const { return file_->page_count(); }
  std::uint32_t tuples_per_page() const {
    return file_->config().TuplesPerPage();
  }

 private:
  explicit Table(std::unique_ptr<HeapFile> file) : file_(std::move(file)) {}

  // unique_ptr keeps Table cheaply movable while HeapFile stays simple.
  std::unique_ptr<HeapFile> file_;
};

}  // namespace equihist

#endif  // EQUIHIST_STORAGE_TABLE_H_
