#ifndef EQUIHIST_STORAGE_PAGE_H_
#define EQUIHIST_STORAGE_PAGE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/result.h"
#include "data/distribution.h"

namespace equihist {

// Geometry of the simulated disk pages. SQL Server 7.0 used 8 KB pages; the
// paper varies the record size 16..128 bytes to vary the blocking factor
// (records per page), so both knobs are explicit here.
struct PageConfig {
  std::uint32_t page_size_bytes = 8192;
  std::uint32_t record_size_bytes = 64;

  // Records per page (the paper's b). Zero if misconfigured.
  std::uint32_t TuplesPerPage() const {
    if (record_size_bytes == 0) return 0;
    return page_size_bytes / record_size_bytes;
  }
};

Status ValidatePageConfig(const PageConfig& config);

// One simulated disk page: a fixed-capacity slotted run of records. Only
// the studied attribute is materialized per record (the rest of the record
// is padding that influences capacity, not behaviour).
//
// Every page carries a payload checksum, maintained incrementally on
// append (FNV-1a over the record values). The stored checksum is what a
// real page header would persist; the fault-injection read path verifies
// it to catch corrupted payloads, and the default (injector-less) read
// path skips verification so the hot path pays nothing.
class Page {
 public:
  explicit Page(std::uint32_t capacity) : capacity_(capacity) {
    values_.reserve(capacity);
  }

  std::uint32_t capacity() const { return capacity_; }
  std::uint32_t size() const { return static_cast<std::uint32_t>(values_.size()); }
  bool full() const { return size() >= capacity_; }
  bool empty() const { return values_.empty(); }

  // Appends a record; returns false if the page is full.
  bool Append(Value value) {
    if (full()) return false;
    values_.push_back(value);
    checksum_ = MixChecksum(checksum_, value);
    return true;
  }

  // Record in slot `slot`. Precondition: slot < size().
  Value at(std::uint32_t slot) const { return values_[slot]; }

  std::span<const Value> values() const { return values_; }

  // The checksum recorded at write time.
  std::uint64_t checksum() const { return checksum_; }

  // Recomputes the checksum from the current payload. Differs from
  // checksum() iff the payload was altered after append.
  std::uint64_t ComputeChecksum() const {
    std::uint64_t h = kChecksumSeed;
    for (const Value v : values_) h = MixChecksum(h, v);
    return h;
  }

  bool ChecksumOk() const { return ComputeChecksum() == checksum_; }

  // Flips bits of the value in `slot` *without* updating the stored
  // checksum — the corruption primitive the FaultInjector uses to produce
  // detectably damaged page copies. Precondition: slot < size().
  void CorruptValue(std::uint32_t slot, Value xor_mask) {
    values_[slot] ^= xor_mask;
  }

 private:
  static constexpr std::uint64_t kChecksumSeed = 0xCBF29CE484222325ULL;

  static std::uint64_t MixChecksum(std::uint64_t h, Value value) {
    // FNV-1a over the value's 8 bytes, one round per byte.
    auto bits = static_cast<std::uint64_t>(value);
    for (int i = 0; i < 8; ++i) {
      h ^= (bits >> (8 * i)) & 0xFFu;
      h *= 0x100000001B3ULL;
    }
    return h;
  }

  std::uint32_t capacity_;
  std::uint64_t checksum_ = kChecksumSeed;
  std::vector<Value> values_;
};

}  // namespace equihist

#endif  // EQUIHIST_STORAGE_PAGE_H_
