#ifndef EQUIHIST_STORAGE_PAGE_H_
#define EQUIHIST_STORAGE_PAGE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/result.h"
#include "data/distribution.h"

namespace equihist {

// Geometry of the simulated disk pages. SQL Server 7.0 used 8 KB pages; the
// paper varies the record size 16..128 bytes to vary the blocking factor
// (records per page), so both knobs are explicit here.
struct PageConfig {
  std::uint32_t page_size_bytes = 8192;
  std::uint32_t record_size_bytes = 64;

  // Records per page (the paper's b). Zero if misconfigured.
  std::uint32_t TuplesPerPage() const {
    if (record_size_bytes == 0) return 0;
    return page_size_bytes / record_size_bytes;
  }
};

Status ValidatePageConfig(const PageConfig& config);

// One simulated disk page: a fixed-capacity slotted run of records. Only
// the studied attribute is materialized per record (the rest of the record
// is padding that influences capacity, not behaviour).
class Page {
 public:
  explicit Page(std::uint32_t capacity) : capacity_(capacity) {
    values_.reserve(capacity);
  }

  std::uint32_t capacity() const { return capacity_; }
  std::uint32_t size() const { return static_cast<std::uint32_t>(values_.size()); }
  bool full() const { return size() >= capacity_; }
  bool empty() const { return values_.empty(); }

  // Appends a record; returns false if the page is full.
  bool Append(Value value) {
    if (full()) return false;
    values_.push_back(value);
    return true;
  }

  // Record in slot `slot`. Precondition: slot < size().
  Value at(std::uint32_t slot) const { return values_[slot]; }

  std::span<const Value> values() const { return values_; }

 private:
  std::uint32_t capacity_;
  std::vector<Value> values_;
};

}  // namespace equihist

#endif  // EQUIHIST_STORAGE_PAGE_H_
