#ifndef EQUIHIST_STORAGE_IO_STATS_H_
#define EQUIHIST_STORAGE_IO_STATS_H_

#include <cstdint>

namespace equihist {

// Access-path cost accounting. The paper's central efficiency argument is
// that reading one tuple off disk costs as much as reading its whole block,
// so every access path in this library charges its I/O here. Benchmarks
// report pages_read as the proxy for the paper's "number of disk blocks
// sampled" (Figure 4) and tuples_read for the logical sample size.
struct IoStats {
  std::uint64_t pages_read = 0;
  std::uint64_t tuples_read = 0;

  // -- Fault accounting (PR 4) ----------------------------------------------
  // Reads that failed with a transient error and were re-issued by the
  // retry layer (each retry counts once, successful or not).
  std::uint64_t transient_retries = 0;
  // Pages given up on after retry: permanently lost, corrupt, or transient
  // past the retry budget. The sampling paths replace these with fresh
  // uniformly-drawn pages where possible; the count is what the fault
  // budget is charged against.
  std::uint64_t pages_skipped = 0;
  // Subset of pages_skipped that failed the payload checksum.
  std::uint64_t pages_corrupt = 0;

  void Reset() { *this = IoStats{}; }

  IoStats& operator+=(const IoStats& other) {
    pages_read += other.pages_read;
    tuples_read += other.tuples_read;
    transient_retries += other.transient_retries;
    pages_skipped += other.pages_skipped;
    pages_corrupt += other.pages_corrupt;
    return *this;
  }
};

}  // namespace equihist

#endif  // EQUIHIST_STORAGE_IO_STATS_H_
