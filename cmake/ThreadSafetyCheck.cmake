# Configure-time self-test of Clang's thread safety analysis against the
# annotated lock wrappers (src/common/mutex.h). Two try_compile probes:
#
#   * tsa_check_guarded_access_ok.cc       must COMPILE  (correct locking)
#   * tsa_check_unguarded_access_fails.cc  must NOT compile (missing lock)
#
# The negative probe is the important one: the annotation macros expand to
# nothing on non-Clang compilers, so a misconfigured Clang build (flag
# dropped, __has_attribute probe broken) would silently check nothing.
# Failing the configure step makes that state impossible to ship from CI.
#
# No-op on compilers without -Wthread-safety (GCC builds rely on the CI
# Clang job for analysis coverage).

function(equihist_check_thread_safety)
  if(NOT CMAKE_CXX_COMPILER_ID MATCHES "Clang")
    return()
  endif()

  set(_tsa_flags "-Wthread-safety" "-Werror")
  set(_tsa_dir "${CMAKE_SOURCE_DIR}/cmake")

  try_compile(_tsa_positive_ok
    "${CMAKE_BINARY_DIR}/tsa_check_positive"
    "${_tsa_dir}/tsa_check_guarded_access_ok.cc"
    COMPILE_DEFINITIONS "${_tsa_flags}"
    CMAKE_FLAGS
      "-DINCLUDE_DIRECTORIES=${CMAKE_SOURCE_DIR}/src"
      "-DCMAKE_CXX_STANDARD=${CMAKE_CXX_STANDARD}"
      "-DCMAKE_CXX_STANDARD_REQUIRED=ON"
    OUTPUT_VARIABLE _tsa_positive_output)
  if(NOT _tsa_positive_ok)
    message(FATAL_ERROR
      "Thread safety analysis check failed: correctly locked code was "
      "rejected under -Wthread-safety. Annotation macros or lock wrappers "
      "are broken.\n${_tsa_positive_output}")
  endif()

  try_compile(_tsa_negative_ok
    "${CMAKE_BINARY_DIR}/tsa_check_negative"
    "${_tsa_dir}/tsa_check_unguarded_access_fails.cc"
    COMPILE_DEFINITIONS "${_tsa_flags}"
    CMAKE_FLAGS
      "-DINCLUDE_DIRECTORIES=${CMAKE_SOURCE_DIR}/src"
      "-DCMAKE_CXX_STANDARD=${CMAKE_CXX_STANDARD}"
      "-DCMAKE_CXX_STANDARD_REQUIRED=ON")
  if(_tsa_negative_ok)
    message(FATAL_ERROR
      "Thread safety analysis check failed: an unguarded GUARDED_BY access "
      "compiled under -Wthread-safety -Werror. The analysis is silently "
      "disabled — every annotation in the tree is unchecked.")
  endif()

  message(STATUS "Thread safety analysis self-test passed "
    "(guarded access accepted, unguarded access rejected)")
endfunction()
