// Configure-time negative probe (cmake/ThreadSafetyCheck.cmake): this
// translation unit touches a GUARDED_BY field without holding its mutex
// and MUST fail to compile under -Wthread-safety -Werror. If it compiles,
// the analysis is silently off and every annotation in the tree is dead
// weight — the configure step errors out.
#include "common/mutex.h"

namespace {

struct Counter {
  equihist::Mutex mu;
  int value GUARDED_BY(mu) = 0;

  void Increment() {
    ++value;  // no lock held: -Wthread-safety must reject this
  }
};

}  // namespace

int main() {
  Counter counter;
  counter.Increment();
  return 0;
}
