// Configure-time positive probe (cmake/ThreadSafetyCheck.cmake): correctly
// locked access to a GUARDED_BY field must compile cleanly under
// -Wthread-safety -Werror. If this fails, the annotation macros are broken
// for the active compiler.
#include "common/mutex.h"

namespace {

struct Counter {
  equihist::Mutex mu;
  int value GUARDED_BY(mu) = 0;

  void Increment() {
    equihist::MutexLock lock(mu);
    ++value;
  }

  int Read() {
    equihist::MutexLock lock(mu);
    return value;
  }
};

}  // namespace

int main() {
  Counter counter;
  counter.Increment();
  return counter.Read() == 1 ? 0 : 1;
}
