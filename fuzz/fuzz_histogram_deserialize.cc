// Fuzz target: the persisted-statistics decoders (stats/serialization.h).
// Raw bytes go through every deserialization entry point — the
// backend-dispatching container (DeserializeHistogramModel, all registered
// backends including the incremental equi-depth family, id 5), the
// equi-height wrapper (DeserializeHistogram, v1 and v2 blobs), and the
// whole-statistics decoder (DeserializeColumnStatistics). Contract under
// arbitrary corruption: a typed Status, never UB.
//
// Accepted inputs additionally pin the codec's round-trip fixpoint:
// re-serializing a parsed object and parsing it again must succeed and
// yield byte-identical serialization (the canonical form is stable).

#include <cstdint>
#include <span>
#include <vector>

#include "fuzz_util.h"
#include "stats/column_statistics.h"
#include "stats/histogram_model.h"
#include "stats/serialization.h"

namespace {

void FuzzModel(std::span<const std::uint8_t> bytes) {
  // Whole-buffer form (rejects trailing garbage)...
  const auto whole = equihist::DeserializeHistogramModel(bytes);
  // ...and the prefix form used when statistics follow the container.
  std::size_t consumed = 0;
  const auto prefix = equihist::DeserializeHistogramModel(bytes, &consumed);
  if (!prefix.ok()) {
    // A prefix parse strictly generalizes the whole-buffer parse.
    FUZZ_CHECK(!whole.ok(), "whole-buffer parse accepted what prefix rejected");
    return;
  }
  FUZZ_CHECK(consumed <= bytes.size(), "consumed past the buffer");

  std::vector<std::uint8_t> first;
  equihist::SerializeHistogramModel(**prefix, &first);
  const auto again = equihist::DeserializeHistogramModel(first);
  FUZZ_CHECK(again.ok(), "re-serialized model failed to parse");
  std::vector<std::uint8_t> second;
  equihist::SerializeHistogramModel(**again, &second);
  FUZZ_CHECK(first == second, "model serialization is not a fixpoint");
  FUZZ_CHECK((*prefix)->backend_id() == (*again)->backend_id(),
             "backend id changed across the round trip");
}

void FuzzHistogram(std::span<const std::uint8_t> bytes) {
  std::size_t consumed = 0;
  const auto histogram = equihist::DeserializeHistogram(bytes, &consumed);
  if (!histogram.ok()) return;
  FUZZ_CHECK(consumed <= bytes.size(), "consumed past the buffer");

  std::vector<std::uint8_t> first;
  equihist::SerializeHistogram(*histogram, &first);
  const auto again = equihist::DeserializeHistogram(first);
  FUZZ_CHECK(again.ok(), "re-serialized histogram failed to parse");
  FUZZ_CHECK(again->bucket_count() == histogram->bucket_count() &&
                 again->total() == histogram->total() &&
                 again->separators() == histogram->separators() &&
                 again->counts() == histogram->counts() &&
                 again->lower_fence() == histogram->lower_fence() &&
                 again->upper_fence() == histogram->upper_fence(),
             "histogram round trip changed the histogram");
  std::vector<std::uint8_t> second;
  equihist::SerializeHistogram(*again, &second);
  FUZZ_CHECK(first == second, "histogram serialization is not a fixpoint");
}

void FuzzColumnStatistics(std::span<const std::uint8_t> bytes) {
  const auto stats = equihist::DeserializeColumnStatistics(bytes);
  if (!stats.ok()) return;
  FUZZ_CHECK(stats->model != nullptr, "accepted statistics without a model");

  std::vector<std::uint8_t> first;
  equihist::SerializeColumnStatistics(*stats, &first);
  const auto again = equihist::DeserializeColumnStatistics(first);
  FUZZ_CHECK(again.ok(), "re-serialized statistics failed to parse");
  std::vector<std::uint8_t> second;
  equihist::SerializeColumnStatistics(*again, &second);
  FUZZ_CHECK(first == second, "statistics serialization is not a fixpoint");
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::span<const std::uint8_t> bytes(data, size);
  FuzzModel(bytes);
  FuzzHistogram(bytes);
  FuzzColumnStatistics(bytes);
  return 0;
}
