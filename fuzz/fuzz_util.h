#ifndef EQUIHIST_FUZZ_FUZZ_UTIL_H_
#define EQUIHIST_FUZZ_FUZZ_UTIL_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <span>

// Shared helpers for the fuzz/ harnesses (DESIGN.md §18). Each harness
// defines LLVMFuzzerTestOneInput; linked against libFuzzer it becomes a
// coverage-guided fuzzer, linked against fuzz_main.cc it becomes a
// corpus-regression runner / seeded-mutation campaign driver that works
// on any toolchain.

// A property violation in a harness — not a sanitizer finding, but the
// harness's own assertion (round-trip mismatch, kernel divergence). Abort
// so both libFuzzer and the replay runner treat it as a crash and keep
// the reproducing input.
#define FUZZ_CHECK(cond, msg)                                          \
  do {                                                                 \
    if (!(cond)) {                                                     \
      std::fprintf(stderr, "fuzz property violated: %s (%s:%d)\n", msg, \
                   __FILE__, __LINE__);                                \
      std::abort();                                                    \
    }                                                                  \
  } while (0)

namespace equihist::fuzz {

// A structure-aware decoder over the raw fuzz input: fixed-width reads
// with zero-fill past the end, so every input prefix decodes to *some*
// valid value sequence and the fuzzer can explore structured parameter
// space byte by byte.
struct ByteStream {
  ByteStream(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  std::size_t remaining() const { return size_ - pos_; }
  bool empty() const { return pos_ >= size_; }

  std::uint8_t U8() { return pos_ < size_ ? data_[pos_++] : 0; }

  std::uint64_t U64() {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(U8()) << (8 * i);
    }
    return v;
  }

  std::int64_t I64() { return static_cast<std::int64_t>(U64()); }

  double F64() {
    const std::uint64_t bits = U64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  // A value in [0, bound); bound 0 yields 0.
  std::uint64_t Below(std::uint64_t bound) {
    return bound == 0 ? 0 : U64() % bound;
  }

  // Everything not yet consumed, consuming it.
  std::span<const std::uint8_t> Rest() {
    std::span<const std::uint8_t> rest(data_ + pos_, size_ - pos_);
    pos_ = size_;
    return rest;
  }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace equihist::fuzz

#endif  // EQUIHIST_FUZZ_FUZZ_UTIL_H_
