// Fuzz target: the fleetwire frame codec (stats/fleet_wire.h) and the
// fleet's frame-serving entry point (StatisticsFleet::ServeFrame). The
// first input byte picks the attack surface:
//
//   0-6 — one typed decoder gets the rest of the bytes. An accepted frame
//         must re-encode and re-decode to the same frame (decoders reject
//         trailing bytes, so Encode ∘ Decode is a canonicalizing
//         fixpoint).
//   7   — PeekType on arbitrary bytes.
//   else — ServeFrame against a small live fleet (2 shards, a real table):
//         the full production dispatch — magic/version check, typed
//         decode, estimate or build-control execution, response encode.
//         Whatever the bytes, ServeFrame must return a typed Status or a
//         decodable response frame, never crash, and never wedge.

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "data/distribution.h"
#include "fuzz_util.h"
#include "stats/fleet_wire.h"
#include "stats/statistics_fleet.h"
#include "storage/table.h"

using equihist::fuzz::ByteStream;

namespace {

// The live fleet the ServeFrame mode attacks: built once, deliberately
// tiny (builds triggered by fuzzed build-control frames stay cheap) but
// real — a Zipf table, 2 shards, the normal build pipeline.
struct LiveFleet {
  equihist::Table table;
  equihist::StatisticsFleet fleet;

  LiveFleet()
      : table(MakeTable()),
        fleet(equihist::StatisticsFleet::Options{
            .shards = 2,
            .shard = {.buckets = 8, .f = 0.5, .seed = 17, .threads = 1},
            .coalesce = false,
        }) {}

  static equihist::Table MakeTable() {
    const auto freq = equihist::MakeZipf(
        {.n = 2000, .domain_size = 100, .skew = 1.1, .seed = 7});
    return equihist::Table::Create(*freq, {8192, 64},
                                   {.kind = equihist::LayoutKind::kRandom,
                                    .seed = 7})
        .value();
  }

  // Fuzzed build-control frames insert one shard entry per unique column
  // name, so a long campaign would grow the fleet without bound; the
  // instance is recycled periodically to keep the working set flat.
  static LiveFleet& Instance() {
    static std::unique_ptr<LiveFleet> instance = std::make_unique<LiveFleet>();
    static std::uint64_t serves = 0;
    if (++serves % 16384 == 0) instance = std::make_unique<LiveFleet>();
    return *instance;
  }
};

template <typename Frame, typename DecodeFn>
void RoundTrip(std::span<const std::uint8_t> bytes, DecodeFn decode) {
  const auto frame = decode(bytes);
  if (!frame.ok()) return;
  const std::vector<std::uint8_t> encoded = equihist::fleetwire::Encode(*frame);
  const auto again = decode(encoded);
  FUZZ_CHECK(again.ok(), "re-encoded frame failed to decode");
  const std::vector<std::uint8_t> second = equihist::fleetwire::Encode(*again);
  FUZZ_CHECK(encoded == second, "frame encoding is not a fixpoint");
}

void FuzzServeFrame(std::span<const std::uint8_t> bytes) {
  LiveFleet& live = LiveFleet::Instance();
  const auto response = live.fleet.ServeFrame(bytes, live.table);
  if (!response.ok()) return;
  // A served response is itself a well-formed frame of a response type.
  const auto type = equihist::fleetwire::PeekType(*response);
  FUZZ_CHECK(type.ok(), "ServeFrame returned an unframed response");
  switch (*type) {
    case equihist::fleetwire::FrameType::kEstimateBatchResponse:
      FUZZ_CHECK(
          equihist::fleetwire::DecodeEstimateBatchResponse(*response).ok(),
          "undecodable estimate response");
      break;
    case equihist::fleetwire::FrameType::kBuildControlResponse:
      FUZZ_CHECK(
          equihist::fleetwire::DecodeBuildControlResponse(*response).ok(),
          "undecodable build-control response");
      break;
    case equihist::fleetwire::FrameType::kMetricsResponse:
      FUZZ_CHECK(equihist::fleetwire::DecodeMetricsResponse(*response).ok(),
                 "undecodable metrics response");
      break;
    case equihist::fleetwire::FrameType::kRejection: {
      const auto rejection = equihist::fleetwire::DecodeRejection(*response);
      FUZZ_CHECK(rejection.ok(), "undecodable rejection");
      FUZZ_CHECK(rejection->code != equihist::StatusCode::kOk,
                 "rejection carrying kOk");
      break;
    }
    default:
      FUZZ_CHECK(false, "ServeFrame returned a request-typed frame");
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size < 1) return 0;
  ByteStream stream(data, size);
  const std::uint8_t mode = stream.U8() % 9;
  const std::span<const std::uint8_t> rest = stream.Rest();
  switch (mode) {
    case 0:
      RoundTrip<equihist::fleetwire::EstimateBatchRequestFrame>(
          rest, equihist::fleetwire::DecodeEstimateBatchRequest);
      break;
    case 1:
      RoundTrip<equihist::fleetwire::EstimateBatchResponseFrame>(
          rest, equihist::fleetwire::DecodeEstimateBatchResponse);
      break;
    case 2:
      RoundTrip<equihist::fleetwire::BuildControlRequestFrame>(
          rest, equihist::fleetwire::DecodeBuildControlRequest);
      break;
    case 3:
      RoundTrip<equihist::fleetwire::BuildControlResponseFrame>(
          rest, equihist::fleetwire::DecodeBuildControlResponse);
      break;
    case 4:
      // Metrics requests carry no payload; the decoder is a pure
      // validator.
      (void)equihist::fleetwire::DecodeMetricsRequest(rest);
      break;
    case 5:
      RoundTrip<equihist::fleetwire::MetricsResponseFrame>(
          rest, equihist::fleetwire::DecodeMetricsResponse);
      break;
    case 6:
      RoundTrip<equihist::fleetwire::RejectionFrame>(
          rest, equihist::fleetwire::DecodeRejection);
      break;
    case 7:
      (void)equihist::fleetwire::PeekType(rest);
      break;
    default:
      FuzzServeFrame(rest);
      break;
  }
  return 0;
}
