// Seed-corpus generator for the fuzz/ harnesses. Each seed is a *valid*
// instance of the structure its target decodes — a serialized histogram,
// an encoded frame, a framed envelope — prefixed with the harness's mode
// byte where one exists, so campaigns start from deep inside the accept
// paths instead of spending their budget rediscovering magic bytes.
//
// Usage: make_fuzz_corpus <output-root>
// Writes corpus files under <output-root>/<target>/<name>. The checked-in
// fuzz/corpus/ tree is this program's output, regenerated whenever a wire
// format changes shape.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/histogram.h"
#include "sampling/reservoir.h"
#include "stats/column_statistics.h"
#include "stats/fleet_wire.h"
#include "stats/serialization.h"
#include "stats/transport.h"
#include "stats/wire_format.h"

namespace {

using Bytes = std::vector<std::uint8_t>;

void WriteSeed(const std::filesystem::path& root, const std::string& target,
               const std::string& name, const Bytes& bytes) {
  const std::filesystem::path dir = root / target;
  std::filesystem::create_directories(dir);
  std::ofstream out(dir / name, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

Bytes WithMode(std::uint8_t mode, const Bytes& rest) {
  Bytes out(rest.size() + 1);
  out[0] = mode;
  std::copy(rest.begin(), rest.end(), out.begin() + 1);
  return out;
}

equihist::Histogram SampleHistogram() {
  // Duplicated separator (a Section-5 spike at 30) included on purpose.
  return equihist::Histogram::Create({10, 20, 30, 30, 47},
                                     {5, 9, 14, 400, 3, 12}, 0, 60)
      .value();
}

void WireReaderSeeds(const std::filesystem::path& root) {
  Bytes stream;
  equihist::wire::PutVarint(0, &stream);
  equihist::wire::PutVarint(127, &stream);
  equihist::wire::PutVarint(128, &stream);
  equihist::wire::PutVarint(~std::uint64_t{0}, &stream);  // 10-byte maximal
  equihist::wire::PutSigned(-1, &stream);
  equihist::wire::PutF64(3.25, &stream);
  equihist::wire::PutVarint(2, &stream);  // plausible length prefix
  stream.push_back(0xAA);
  stream.push_back(0xBB);
  WriteSeed(root, "fuzz_wire_reader", "hostile_varints", WithMode(0, stream));

  Bytes values;
  for (const std::uint64_t v :
       {std::uint64_t{0}, std::uint64_t{300}, ~std::uint64_t{0},
        std::uint64_t{0x8000000000000000ULL}}) {
    for (int i = 0; i < 8; ++i) {
      values.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  WriteSeed(root, "fuzz_wire_reader", "round_trip_values",
            WithMode(1, values));
}

void HistogramSeeds(const std::filesystem::path& root) {
  const equihist::Histogram histogram = SampleHistogram();
  Bytes container;
  equihist::SerializeHistogram(histogram, &container);
  WriteSeed(root, "fuzz_histogram_deserialize", "equiheight_v2", container);

  equihist::ColumnStatistics stats;
  stats.SetEquiHeight(histogram);
  stats.density = 0.125;
  stats.distinct_estimate = 42.0;
  stats.row_count = 443;
  stats.sample_size = 120;
  stats.heavy_hitters = {{30, 400}};
  Bytes full;
  equihist::SerializeColumnStatistics(stats, &full);
  WriteSeed(root, "fuzz_histogram_deserialize", "column_statistics", full);
}

void ReservoirSeeds(const std::filesystem::path& root) {
  auto reservoir = *equihist::BackingReservoir::Create(8, 99);
  const std::vector<equihist::Value> sample = {3, 1, 4, 1, 5};
  (void)reservoir.SeedFromSample(sample, 100);
  for (equihist::Value v = 0; v < 20; ++v) reservoir.Add(v);
  (void)reservoir.Delete(3);
  Bytes serialized;
  reservoir.SerializeTo(&serialized);
  WriteSeed(root, "fuzz_reservoir", "serialized_state",
            WithMode(0, serialized));

  // mode 1 structured stream: capacity/seed words then ops.
  Bytes ops;
  for (int i = 0; i < 64; ++i) {
    ops.push_back(static_cast<std::uint8_t>(i * 37));
  }
  WriteSeed(root, "fuzz_reservoir", "op_stream", WithMode(1, ops));
}

void FleetWireSeeds(const std::filesystem::path& root) {
  using namespace equihist::fleetwire;
  const Bytes estimate_req = Encode(EstimateBatchRequestFrame{
      {{"t.c1", {5, 25}}, {"t.c2", {0, 60}}}});
  const Bytes estimate_resp = Encode(EstimateBatchResponseFrame{{12.5, 60.0}});
  const Bytes build_req = Encode(BuildControlRequestFrame{
      BuildOp::kEnsureFresh, "t.c1", 0});
  const Bytes build_resp = Encode(BuildControlResponseFrame{
      equihist::StatusCode::kOk, ""});
  const Bytes metrics_req = EncodeMetricsRequest();
  const Bytes metrics_resp = Encode(MetricsResponseFrame{"{\"fleet\":{}}"});
  const Bytes rejection = Encode(RejectionFrame{
      equihist::StatusCode::kResourceExhausted, "shedding load"});

  WriteSeed(root, "fuzz_fleet_wire", "estimate_request",
            WithMode(0, estimate_req));
  WriteSeed(root, "fuzz_fleet_wire", "estimate_response",
            WithMode(1, estimate_resp));
  WriteSeed(root, "fuzz_fleet_wire", "build_request", WithMode(2, build_req));
  WriteSeed(root, "fuzz_fleet_wire", "build_response",
            WithMode(3, build_resp));
  WriteSeed(root, "fuzz_fleet_wire", "metrics_request",
            WithMode(4, metrics_req));
  WriteSeed(root, "fuzz_fleet_wire", "metrics_response",
            WithMode(5, metrics_resp));
  WriteSeed(root, "fuzz_fleet_wire", "rejection", WithMode(6, rejection));
  WriteSeed(root, "fuzz_fleet_wire", "peek", WithMode(7, estimate_req));
  WriteSeed(root, "fuzz_fleet_wire", "serve_estimate",
            WithMode(8, estimate_req));
  WriteSeed(root, "fuzz_fleet_wire", "serve_build", WithMode(8, build_req));
  WriteSeed(root, "fuzz_fleet_wire", "serve_metrics",
            WithMode(8, metrics_req));
}

void EnvelopeSeeds(const std::filesystem::path& root) {
  const Bytes frame = equihist::fleetwire::EncodeMetricsRequest();
  const Bytes message = equihist::transport::EncodeEnvelope(
      /*request_id=*/7, /*budget_micros=*/250'000, /*include_budget=*/true,
      frame);

  // mode 0 decodes a bare payload: strip the length prefix.
  equihist::wire::Reader reader(message);
  const auto length = reader.Varint();
  Bytes payload(message.begin() +
                    static_cast<std::ptrdiff_t>(reader.position()),
                message.end());
  (void)length;
  // selector bit0=0 -> decode; bit1 -> expect_budget.
  WriteSeed(root, "fuzz_transport_envelope", "payload_with_budget",
            WithMode(2, payload));
  WriteSeed(root, "fuzz_transport_envelope", "payload_no_budget",
            WithMode(0, payload));
  // selector bit0=1 -> socket stream mode gets the whole framed message.
  WriteSeed(root, "fuzz_transport_envelope", "framed_stream",
            WithMode(1, message));
}

void EstimatorSeeds(const std::filesystem::path& root) {
  // The harness decodes any bytes into a valid spec; seeds just pick
  // useful regions: small-k moderate fences and large-k extreme fences.
  Bytes small;
  small.push_back(4);   // k material
  small.push_back(0);   // moderate fences
  for (int i = 0; i < 96; ++i) {
    small.push_back(static_cast<std::uint8_t>(i * 11));
  }
  WriteSeed(root, "fuzz_estimator_kernels", "small_moderate", small);

  Bytes large;
  large.push_back(0xFF);  // k material (large)
  large.push_back(1);     // extreme fences
  for (int i = 0; i < 512; ++i) {
    large.push_back(static_cast<std::uint8_t>((i * 29) ^ (i >> 3)));
  }
  WriteSeed(root, "fuzz_estimator_kernels", "large_extreme", large);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <output-root>\n", argv[0]);
    return 1;
  }
  const std::filesystem::path root = argv[1];
  WireReaderSeeds(root);
  HistogramSeeds(root);
  ReservoirSeeds(root);
  FleetWireSeeds(root);
  EnvelopeSeeds(root);
  EstimatorSeeds(root);
  std::fprintf(stderr, "corpus written under %s\n", root.string().c_str());
  return 0;
}
