// Structure-aware differential fuzz target for the serving kernels
// (core/compiled_estimator.h). The input decodes into a *valid* histogram
// spec — bucket count, fences (moderate or full-domain extreme), a
// non-decreasing separator sequence with forced duplicate runs (the
// Section-5 spike shapes), arbitrary counts — plus a query batch mixing
// in-domain, separator-aligned, reversed and fence-overshooting ranges.
// Properties:
//
//   - kScalar, kEytzinger and kSimd agree BITWISE, single-query and
//     batch, per the kernel identity guarantee (same comparison sequence,
//     same interpolation arithmetic, contraction disabled);
//   - every kernel agrees with the reference bucket-walking loop
//     (core/range_estimator.h) within the documented tolerance of a few
//     ulps of the largest bucket count;
//   - estimates are finite, non-negative, and bounded by the total.

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "core/compiled_estimator.h"
#include "core/histogram.h"
#include "core/range_estimator.h"
#include "data/workload.h"
#include "fuzz_util.h"

using equihist::fuzz::ByteStream;

namespace {

constexpr equihist::Value kValueMin =
    std::numeric_limits<equihist::Value>::min();
constexpr equihist::Value kValueMax =
    std::numeric_limits<equihist::Value>::max();

// The documented numerical contract vs the reference loop (see the
// CompiledEstimator header): a few ulps of the largest bucket count.
double Tolerance(const equihist::Histogram& histogram) {
  std::uint64_t max_count = 0;
  for (const std::uint64_t c : histogram.counts()) {
    max_count = std::max(max_count, c);
  }
  return 1e-10 * (1.0 + static_cast<double>(max_count));
}

bool BitEqual(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

equihist::Histogram DecodeHistogramSpec(ByteStream& stream) {
  const std::uint64_t k = 1 + stream.Below(512);
  const bool extreme_fences = (stream.U8() & 1) != 0;

  std::vector<equihist::Value> separators;
  separators.reserve(k - 1);
  equihist::Value lower_fence;
  equihist::Value upper_fence;
  if (extreme_fences) {
    // Full-domain fences; any sorted int64 sequence is a valid separator
    // set. Exercises the ValueDistance unsigned-width paths.
    lower_fence = kValueMin;
    upper_fence = kValueMax;
    for (std::uint64_t j = 0; j + 1 < k; ++j) {
      if (!separators.empty() && (stream.U8() & 3) == 0) {
        separators.push_back(separators.back());  // forced duplicate run
      } else {
        separators.push_back(static_cast<equihist::Value>(stream.I64()));
      }
    }
    std::sort(separators.begin(), separators.end());
  } else {
    // Moderate fences: separators accumulate small non-negative deltas
    // (zero = duplicate run) from the lower fence.
    lower_fence = static_cast<equihist::Value>(
        static_cast<std::int64_t>(stream.Below(1u << 20)) - (1 << 19));
    equihist::Value prev = lower_fence;
    for (std::uint64_t j = 0; j + 1 < k; ++j) {
      prev += static_cast<equihist::Value>(stream.Below(1000));
      separators.push_back(prev);
    }
    upper_fence = prev + static_cast<equihist::Value>(stream.Below(1000));
  }

  std::vector<std::uint64_t> counts;
  counts.reserve(k);
  for (std::uint64_t j = 0; j < k; ++j) {
    counts.push_back(stream.Below(100'000));  // sum stays far below 2^53
  }

  auto histogram = equihist::Histogram::Create(
      std::move(separators), std::move(counts), lower_fence, upper_fence);
  FUZZ_CHECK(histogram.ok(), "decoded spec rejected by Histogram::Create");
  return std::move(*histogram);
}

// In-domain, separator-aligned, reversed and out-of-domain queries.
equihist::RangeQuery DecodeQuery(ByteStream& stream,
                                 const equihist::Histogram& histogram) {
  const auto& seps = histogram.separators();
  equihist::RangeQuery query;
  switch (stream.U8() & 3) {
    case 0: {  // separator-aligned (exact-agreement class)
      if (!seps.empty()) {
        query.lo = seps[stream.Below(seps.size())];
        query.hi = seps[stream.Below(seps.size())];
        break;
      }
      [[fallthrough]];
    }
    case 1: {  // clamped in-domain
      const auto lo64 = static_cast<equihist::Value>(stream.I64());
      const auto hi64 = static_cast<equihist::Value>(stream.I64());
      query.lo = std::clamp(lo64, histogram.lower_fence(),
                            histogram.upper_fence());
      query.hi = std::clamp(hi64, histogram.lower_fence(),
                            histogram.upper_fence());
      break;
    }
    default: {  // raw — overshooting and reversed included
      query.lo = static_cast<equihist::Value>(stream.I64());
      query.hi = static_cast<equihist::Value>(stream.I64());
      break;
    }
  }
  return query;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size < 4) return 0;
  ByteStream stream(data, size);
  const equihist::Histogram histogram = DecodeHistogramSpec(stream);
  const equihist::CompiledEstimator compiled(histogram);
  const double tolerance = Tolerance(histogram);

  std::vector<equihist::RangeQuery> queries;
  const std::size_t n = 1 + stream.Below(64);
  for (std::size_t i = 0; i < n; ++i) {
    queries.push_back(DecodeQuery(stream, histogram));
  }

  // Single-query kernels: bitwise identity, reference agreement, sanity.
  for (const auto& query : queries) {
    const double scalar = compiled.EstimateRangeCount(query);
    const double eytzinger = compiled.EstimateRangeCountEytzinger(query);
    FUZZ_CHECK(BitEqual(scalar, eytzinger),
               "Eytzinger kernel diverged from scalar");
    FUZZ_CHECK(std::isfinite(scalar), "non-finite estimate");
    FUZZ_CHECK(scalar >= 0.0, "negative estimate");
    FUZZ_CHECK(scalar <= static_cast<double>(histogram.total()) + tolerance,
               "estimate exceeds the histogram total");
    const double reference = equihist::EstimateRangeCount(histogram, query);
    FUZZ_CHECK(std::abs(scalar - reference) <= tolerance,
               "compiled estimate outside the documented reference tolerance");
  }

  // Batch kernels: every explicit kernel and kAuto, bitwise equal to the
  // single-query path element by element.
  const equihist::EstimatorKernel kernels[] = {
      equihist::EstimatorKernel::kScalar,
      equihist::EstimatorKernel::kEytzinger,
      equihist::EstimatorKernel::kSimd,
      equihist::EstimatorKernel::kAuto,
  };
  std::vector<double> out(queries.size());
  for (const auto kernel : kernels) {
    std::fill(out.begin(), out.end(), -1.0);
    compiled.EstimateRangeCounts(queries, out, nullptr, kernel);
    for (std::size_t i = 0; i < queries.size(); ++i) {
      FUZZ_CHECK(BitEqual(out[i], compiled.EstimateRangeCount(queries[i])),
                 "batch kernel diverged from the single-query path");
    }
  }
  return 0;
}
