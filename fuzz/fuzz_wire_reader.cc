// Fuzz target: the bounds-checked wire::Reader (stats/wire_format.h), the
// primitive every decoder in the tree is built on. Two modes:
//
//   mode 0 — hostile decode: the input bytes drive a Reader through every
//            accessor; whatever happens, the reader must never read past
//            the buffer (position + remaining == size holds at each step
//            and every successful accessor consumes at least one byte).
//   mode 1 — round-trip properties: input-derived values go through
//            PutVarint/PutSigned/PutF64 and must decode back exactly, the
//            full encoding must be consumed, every strict prefix of a
//            varint encoding must be rejected as truncation, and
//            ZigZag/UnZigZag and WrapSub/WrapAdd must be inverses.

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "fuzz_util.h"
#include "stats/wire_format.h"

using equihist::fuzz::ByteStream;

namespace {

void HostileDecode(std::span<const std::uint8_t> bytes) {
  equihist::wire::Reader reader(bytes);
  std::uint64_t op = 0;
  while (reader.remaining() > 0) {
    const std::size_t before = reader.position();
    bool ok = false;
    switch (op++ % 5) {
      case 0:
        ok = reader.Varint().ok();
        break;
      case 1:
        ok = reader.Signed().ok();
        break;
      case 2:
        ok = reader.Byte().ok();
        break;
      case 3:
        ok = reader.F64().ok();
        break;
      default:
        ok = reader.LengthPrefixedCount(3).ok();
        break;
    }
    FUZZ_CHECK(reader.position() + reader.remaining() == bytes.size(),
               "reader position/remaining out of sync");
    FUZZ_CHECK(reader.position() <= bytes.size(), "reader past the buffer");
    if (!ok) break;
    FUZZ_CHECK(reader.position() > before,
               "successful accessor consumed nothing");
  }
}

void RoundTripProperties(ByteStream& stream) {
  std::vector<std::uint8_t> buf;
  while (stream.remaining() >= 8) {
    const std::uint64_t u = stream.U64();
    const std::int64_t s = static_cast<std::int64_t>(u);

    // Varint round trip, whole-encoding consumption, per-byte truncation.
    buf.clear();
    equihist::wire::PutVarint(u, &buf);
    FUZZ_CHECK(buf.size() >= 1 && buf.size() <= 10, "varint encoding size");
    {
      equihist::wire::Reader reader(buf);
      const auto decoded = reader.Varint();
      FUZZ_CHECK(decoded.ok(), "canonical varint rejected");
      FUZZ_CHECK(*decoded == u, "varint round trip mismatch");
      FUZZ_CHECK(reader.remaining() == 0, "varint decode left bytes");
    }
    for (std::size_t cut = 0; cut < buf.size(); ++cut) {
      equihist::wire::Reader reader(
          std::span<const std::uint8_t>(buf.data(), cut));
      FUZZ_CHECK(!reader.Varint().ok(), "truncated varint accepted");
    }

    // Signed (zigzag) round trip.
    buf.clear();
    equihist::wire::PutSigned(s, &buf);
    {
      equihist::wire::Reader reader(buf);
      const auto decoded = reader.Signed();
      FUZZ_CHECK(decoded.ok() && *decoded == s, "signed round trip mismatch");
    }
    FUZZ_CHECK(equihist::wire::UnZigZag(equihist::wire::ZigZag(s)) == s,
               "zigzag not invertible");

    // Wrapping delta arithmetic is exact for every pair.
    const std::int64_t base = static_cast<std::int64_t>(stream.U64());
    FUZZ_CHECK(equihist::wire::WrapAdd(base, equihist::wire::WrapSub(s, base)) ==
                   s,
               "wrap sub/add not inverse");

    // F64 is a bitwise codec — NaN payloads and -0.0 included.
    double d;
    std::memcpy(&d, &u, sizeof(d));
    buf.clear();
    equihist::wire::PutF64(d, &buf);
    FUZZ_CHECK(buf.size() == 8, "f64 encoding size");
    {
      equihist::wire::Reader reader(buf);
      const auto decoded = reader.F64();
      FUZZ_CHECK(decoded.ok(), "f64 decode failed");
      std::uint64_t bits;
      std::memcpy(&bits, &*decoded, sizeof(bits));
      FUZZ_CHECK(bits == u, "f64 round trip not bitwise");
    }
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size < 1) return 0;
  ByteStream stream(data, size);
  if ((stream.U8() & 1) == 0) {
    HostileDecode(stream.Rest());
  } else {
    RoundTripProperties(stream);
  }
  return 0;
}
