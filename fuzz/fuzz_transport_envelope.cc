// Fuzz target: the transport envelope codec (stats/transport.h) — the
// outermost decoder the socket server runs on bytes straight off a
// connection. Two modes:
//
//   mode 0 — DecodeEnvelopePayload on arbitrary bytes, both with and
//            without the request-only budget field. An accepted payload
//            with an intact checksum must re-encode through
//            EncodeEnvelope to a message whose payload decodes back to
//            the same fields with checksum_ok (encode/decode coherence).
//   mode 1 — the streaming path: the bytes are written into a socketpair
//            and RecvEnvelopePayload reads them back under a real
//            deadline — the exact server framing path (varint length
//            prefix, the 1 MiB admission cap, bounded reads). Whatever
//            arrives, the call must return a typed Status within the
//            deadline; a received payload must byte-match what the
//            length prefix framed.

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <span>
#include <vector>

#include "fuzz_util.h"
#include "stats/transport.h"
#include "stats/wire_format.h"

using equihist::fuzz::ByteStream;

namespace {

std::uint64_t NowMicros() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void FuzzDecode(std::span<const std::uint8_t> bytes, bool expect_budget) {
  const auto decoded =
      equihist::transport::DecodeEnvelopePayload(bytes, expect_budget);
  if (!decoded.ok() || !decoded->checksum_ok) return;

  const std::vector<std::uint8_t> message = equihist::transport::EncodeEnvelope(
      decoded->request_id, decoded->budget_micros, expect_budget,
      decoded->frame);
  // Strip the length prefix: the encoder frames payload bytes the decoder
  // never sees.
  equihist::wire::Reader reader(message);
  const auto length = reader.Varint();
  FUZZ_CHECK(length.ok(), "encoded envelope has no length prefix");
  FUZZ_CHECK(*length == message.size() - reader.position(),
             "length prefix disagrees with the payload");
  const std::span<const std::uint8_t> payload(message.data() +
                                                  reader.position(),
                                              message.size() -
                                                  reader.position());
  const auto again =
      equihist::transport::DecodeEnvelopePayload(payload, expect_budget);
  FUZZ_CHECK(again.ok(), "re-encoded envelope failed to decode");
  FUZZ_CHECK(again->checksum_ok, "re-encoded envelope checksum mismatch");
  FUZZ_CHECK(again->request_id == decoded->request_id &&
                 again->frame == decoded->frame &&
                 (!expect_budget ||
                  again->budget_micros == decoded->budget_micros),
             "envelope round trip changed fields");
}

void FuzzRecvStream(std::span<const std::uint8_t> bytes) {
  int fds[2];
  if (socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) return;

  // Write then read on one thread: cap the write far below the kernel's
  // socketpair buffer so it cannot block.
  const std::size_t n = std::min<std::size_t>(bytes.size(), 60'000);
  std::size_t written = 0;
  while (written < n) {
    const ssize_t rc = write(fds[1], bytes.data() + written, n - written);
    if (rc <= 0) break;
    written += static_cast<std::size_t>(rc);
  }
  shutdown(fds[1], SHUT_WR);  // EOF after the fuzz bytes

  const std::uint64_t deadline = NowMicros() + 200'000;
  const auto payload = equihist::transport::RecvEnvelopePayload(
      fds[0], /*max_frame_bytes=*/1 << 20, deadline, nullptr);
  FUZZ_CHECK(NowMicros() <= deadline + 1'000'000,
             "RecvEnvelopePayload overran its deadline");
  if (payload.ok()) {
    // The framing really came off the stream: re-parse the prefix the
    // reader consumed and check the payload is exactly what it framed.
    equihist::wire::Reader reader(
        std::span<const std::uint8_t>(bytes.data(), written));
    const auto length = reader.Varint();
    FUZZ_CHECK(length.ok() && *length == payload->size(),
               "received payload disagrees with the length prefix");
    FUZZ_CHECK(std::equal(payload->begin(), payload->end(),
                          bytes.begin() +
                              static_cast<std::ptrdiff_t>(reader.position())),
               "received payload bytes differ from the stream");
    // And the production next step must be total: decode both ways.
    (void)equihist::transport::DecodeEnvelopePayload(*payload, true);
    (void)equihist::transport::DecodeEnvelopePayload(*payload, false);
  }
  close(fds[0]);
  close(fds[1]);
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size < 1) return 0;
  ByteStream stream(data, size);
  const std::uint8_t selector = stream.U8();
  const std::span<const std::uint8_t> rest = stream.Rest();
  if ((selector & 1) == 0) {
    FuzzDecode(rest, (selector & 2) != 0);
  } else {
    FuzzRecvStream(rest);
  }
  return 0;
}
