// Fuzz target: the BackingReservoir wire codec and operation stream
// (sampling/reservoir.h). Two modes:
//
//   mode 0 — hostile decode: the bytes go straight to Deserialize (both
//            whole-buffer and prefix forms). Accepted states must satisfy
//            every reservoir invariant, survive further operations, and
//            re-serialize to the canonical fixpoint.
//   mode 1 — op-stream interpreter: a reservoir is created from
//            input-derived (capacity, seed), seeded, then driven through
//            an input-derived Add/Delete stream with invariant checks and
//            a serialize → deserialize → serialize identity at the end.

#include <cstdint>
#include <span>
#include <vector>

#include "fuzz_util.h"
#include "sampling/reservoir.h"

using equihist::fuzz::ByteStream;

namespace {

void CheckInvariants(const equihist::BackingReservoir& reservoir) {
  FUZZ_CHECK(reservoir.size() <= reservoir.capacity(),
             "reservoir overfilled its capacity");
  FUZZ_CHECK(reservoir.capacity() > 0, "reservoir with zero capacity");
  const double fill = reservoir.fill_fraction();
  FUZZ_CHECK(fill >= 0.0 && fill <= 1.0, "fill fraction out of [0, 1]");
  FUZZ_CHECK(reservoir.sample().size() == reservoir.size(),
             "sample size disagrees with size()");
}

// serialize → deserialize → serialize must reproduce the exact bytes and
// an operationally identical reservoir.
void CheckSerializationFixpoint(const equihist::BackingReservoir& reservoir) {
  std::vector<std::uint8_t> first;
  reservoir.SerializeTo(&first);
  const auto restored = equihist::BackingReservoir::Deserialize(first);
  FUZZ_CHECK(restored.ok(), "serialized reservoir failed to parse");
  FUZZ_CHECK(restored->capacity() == reservoir.capacity() &&
                 restored->size() == reservoir.size() &&
                 restored->population() == reservoir.population() &&
                 restored->seen() == reservoir.seen() &&
                 restored->ops_since_seed() == reservoir.ops_since_seed() &&
                 restored->delete_hits() == reservoir.delete_hits() &&
                 restored->delete_misses() == reservoir.delete_misses() &&
                 restored->sample() == reservoir.sample(),
             "reservoir round trip changed state");
  std::vector<std::uint8_t> second;
  restored->SerializeTo(&second);
  FUZZ_CHECK(first == second, "reservoir serialization is not a fixpoint");
}

void DriveOps(equihist::BackingReservoir& reservoir, ByteStream& stream,
              std::size_t max_ops) {
  for (std::size_t i = 0; i < max_ops && stream.remaining() >= 2; ++i) {
    const std::uint8_t op = stream.U8();
    const auto value = static_cast<equihist::Value>(
        static_cast<std::int64_t>(stream.U64()));
    if ((op & 3) == 0) {
      reservoir.Delete(value);
    } else {
      reservoir.Add(value);
    }
    CheckInvariants(reservoir);
  }
}

void HostileDecode(ByteStream& stream) {
  const std::span<const std::uint8_t> bytes = stream.Rest();
  std::size_t consumed = 0;
  const auto prefix =
      equihist::BackingReservoir::Deserialize(bytes, &consumed);
  const auto whole = equihist::BackingReservoir::Deserialize(bytes);
  if (!prefix.ok()) {
    FUZZ_CHECK(!whole.ok(), "whole-buffer parse accepted what prefix rejected");
    return;
  }
  FUZZ_CHECK(consumed <= bytes.size(), "consumed past the buffer");
  auto reservoir = *prefix;
  CheckInvariants(reservoir);
  CheckSerializationFixpoint(reservoir);

  // A restored state must keep working: replay the unconsumed tail of the
  // input as an operation stream.
  ByteStream tail(bytes.data() + consumed, bytes.size() - consumed);
  DriveOps(reservoir, tail, 64);
  CheckSerializationFixpoint(reservoir);
}

void OpStream(ByteStream& stream) {
  const std::uint64_t capacity = 1 + stream.Below(64);
  const std::uint64_t seed = stream.U64();
  auto created = equihist::BackingReservoir::Create(capacity, seed);
  FUZZ_CHECK(created.ok(), "valid capacity rejected");
  auto reservoir = *created;

  // Optionally seed from an input-derived sample.
  const std::uint64_t sample_size = stream.Below(2 * capacity);
  std::vector<equihist::Value> sample;
  sample.reserve(sample_size);
  for (std::uint64_t i = 0; i < sample_size; ++i) {
    sample.push_back(static_cast<equihist::Value>(stream.I64()));
  }
  const std::uint64_t population = sample.size() + stream.Below(1000);
  const auto seeded = reservoir.SeedFromSample(sample, population);
  FUZZ_CHECK(seeded.ok(), "seeding with sample <= population rejected");
  CheckInvariants(reservoir);

  DriveOps(reservoir, stream, 256);
  CheckSerializationFixpoint(reservoir);
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size < 1) return 0;
  ByteStream stream(data, size);
  if ((stream.U8() & 1) == 0) {
    HostileDecode(stream);
  } else {
    OpStream(stream);
  }
  return 0;
}
