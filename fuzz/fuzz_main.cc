// Portable driver for the fuzz/ harnesses when libFuzzer is unavailable
// (the EQUIHIST_FUZZ=OFF build, any toolchain). Two modes:
//
//   replay    — every file named on the command line (directories are
//               walked non-recursively) runs through
//               LLVMFuzzerTestOneInput once. This is the `fuzz`-labeled
//               CTest mode: the checked-in corpus and every crash
//               reproducer replay clean forever.
//   mutation  — with --mutate=N, the collected files seed a deterministic
//               random-mutation campaign: N extra iterations, each a
//               mutated copy (bit flips, byte writes, truncation,
//               extension, chunk duplication, two-seed splice) of a
//               random seed. Not coverage-guided, but it runs the same
//               harness properties under the same sanitizers — the local
//               fallback campaign on toolchains without libFuzzer.
//
// Before every run the input is written to <binary>_last_input, so a
// crash of any kind (FUZZ_CHECK abort, sanitizer report, signal) leaves
// the offending bytes behind for fuzz/crashes/.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace {

using Bytes = std::vector<std::uint8_t>;

// SplitMix64: deterministic and seedable, so a campaign is reproducible
// from (--seed, --mutate) alone.
struct Rng {
  std::uint64_t state;
  std::uint64_t Next() {
    state += 0x9E3779B97F4A7C15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }
  std::uint64_t Below(std::uint64_t bound) {
    return bound == 0 ? 0 : Next() % bound;
  }
};

Bytes ReadFile(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  return Bytes(std::istreambuf_iterator<char>(in),
               std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const Bytes& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

// One mutation step in place. `other` donates bytes for the splice op.
void MutateOnce(Bytes& input, const Bytes& other, Rng& rng,
                std::size_t max_len) {
  if (input.empty()) input.push_back(0);
  switch (rng.Below(6)) {
    case 0: {  // bit flip
      const std::size_t i = rng.Below(input.size());
      input[i] ^= static_cast<std::uint8_t>(1u << rng.Below(8));
      break;
    }
    case 1: {  // byte write
      input[rng.Below(input.size())] =
          static_cast<std::uint8_t>(rng.Below(256));
      break;
    }
    case 2: {  // truncate
      input.resize(1 + rng.Below(input.size()));
      break;
    }
    case 3: {  // extend with random bytes
      const std::size_t n = 1 + rng.Below(16);
      for (std::size_t i = 0; i < n && input.size() < max_len; ++i) {
        input.push_back(static_cast<std::uint8_t>(rng.Below(256)));
      }
      break;
    }
    case 4: {  // duplicate a chunk
      const std::size_t at = rng.Below(input.size());
      const std::size_t n =
          std::min<std::size_t>(1 + rng.Below(32), input.size() - at);
      if (input.size() + n <= max_len) {
        const Bytes chunk(
            input.begin() + static_cast<std::ptrdiff_t>(at),
            input.begin() + static_cast<std::ptrdiff_t>(at + n));
        input.insert(input.begin() + static_cast<std::ptrdiff_t>(at),
                     chunk.begin(), chunk.end());
      }
      break;
    }
    default: {  // splice a chunk from another seed
      if (other.empty()) break;
      const std::size_t src = rng.Below(other.size());
      const std::size_t n =
          std::min<std::size_t>(1 + rng.Below(32), other.size() - src);
      const std::size_t dst = rng.Below(input.size() + 1);
      if (input.size() + n <= max_len) {
        input.insert(input.begin() + static_cast<std::ptrdiff_t>(dst),
                     other.begin() + static_cast<std::ptrdiff_t>(src),
                     other.begin() + static_cast<std::ptrdiff_t>(src + n));
      }
      break;
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t mutate_iterations = 0;
  std::uint64_t seed = 1;
  std::size_t max_len = 1 << 16;
  std::vector<std::filesystem::path> inputs;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--mutate=", 0) == 0) {
      mutate_iterations = std::strtoull(arg.c_str() + 9, nullptr, 10);
    } else if (arg.rfind("--seed=", 0) == 0) {
      seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else if (arg.rfind("--max-len=", 0) == 0) {
      max_len = std::strtoull(arg.c_str() + 10, nullptr, 10);
    } else if (!arg.empty() && arg.front() == '-') {
      // Unknown flags (e.g. libFuzzer spellings) are ignored so scripts
      // can pass a superset.
      std::fprintf(stderr, "fuzz: ignoring unknown flag %s\n", arg.c_str());
    } else {
      std::error_code ec;
      if (std::filesystem::is_directory(arg, ec)) {
        for (const auto& entry : std::filesystem::directory_iterator(arg)) {
          if (entry.is_regular_file()) inputs.push_back(entry.path());
        }
      } else if (std::filesystem::is_regular_file(arg, ec)) {
        inputs.push_back(arg);
      } else {
        // Missing corpus/crash directories are fine: a target with no
        // findings yet has nothing to replay there.
        std::fprintf(stderr, "fuzz: skipping missing path %s\n", arg.c_str());
      }
    }
  }
  std::sort(inputs.begin(), inputs.end());

  const std::string last_input_path =
      std::string(argv[0] != nullptr ? argv[0] : "fuzz") + "_last_input";

  std::vector<Bytes> seeds;
  seeds.reserve(inputs.size());
  for (const auto& path : inputs) {
    Bytes bytes = ReadFile(path);
    WriteFile(last_input_path, bytes);
    LLVMFuzzerTestOneInput(bytes.data(), bytes.size());
    seeds.push_back(std::move(bytes));
  }
  std::fprintf(stderr, "fuzz: replayed %zu corpus inputs\n", seeds.size());

  if (mutate_iterations > 0) {
    if (seeds.empty()) seeds.push_back(Bytes{0});
    Rng rng{seed};
    for (std::uint64_t iter = 0; iter < mutate_iterations; ++iter) {
      Bytes input = seeds[rng.Below(seeds.size())];
      const Bytes& other = seeds[rng.Below(seeds.size())];
      const std::uint64_t steps = 1 + rng.Below(8);
      for (std::uint64_t s = 0; s < steps; ++s) {
        MutateOnce(input, other, rng, max_len);
      }
      WriteFile(last_input_path, input);
      LLVMFuzzerTestOneInput(input.data(), input.size());
      // Keep the pool fresh: occasionally adopt a mutant as a future seed
      // so chains of mutations reach deeper states.
      if (rng.Below(16) == 0 && seeds.size() < 4096) {
        seeds.push_back(std::move(input));
      }
    }
    std::fprintf(stderr, "fuzz: ran %llu mutation iterations (seed %llu)\n",
                 static_cast<unsigned long long>(mutate_iterations),
                 static_cast<unsigned long long>(seed));
  }
  std::remove(last_input_path.c_str());
  return 0;
}
