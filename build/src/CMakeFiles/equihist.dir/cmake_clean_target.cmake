file(REMOVE_RECURSE
  "libequihist.a"
)
