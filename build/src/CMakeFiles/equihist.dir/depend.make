# Empty dependencies file for equihist.
# This may be replaced when dependencies are built.
