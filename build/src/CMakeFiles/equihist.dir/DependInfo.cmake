
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/equi_width.cc" "src/CMakeFiles/equihist.dir/baseline/equi_width.cc.o" "gcc" "src/CMakeFiles/equihist.dir/baseline/equi_width.cc.o.d"
  "/root/repo/src/baseline/gmp_incremental.cc" "src/CMakeFiles/equihist.dir/baseline/gmp_incremental.cc.o" "gcc" "src/CMakeFiles/equihist.dir/baseline/gmp_incremental.cc.o.d"
  "/root/repo/src/baseline/serial_histograms.cc" "src/CMakeFiles/equihist.dir/baseline/serial_histograms.cc.o" "gcc" "src/CMakeFiles/equihist.dir/baseline/serial_histograms.cc.o.d"
  "/root/repo/src/common/math.cc" "src/CMakeFiles/equihist.dir/common/math.cc.o" "gcc" "src/CMakeFiles/equihist.dir/common/math.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/equihist.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/equihist.dir/common/rng.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/equihist.dir/common/status.cc.o" "gcc" "src/CMakeFiles/equihist.dir/common/status.cc.o.d"
  "/root/repo/src/common/string_util.cc" "src/CMakeFiles/equihist.dir/common/string_util.cc.o" "gcc" "src/CMakeFiles/equihist.dir/common/string_util.cc.o.d"
  "/root/repo/src/core/bounds.cc" "src/CMakeFiles/equihist.dir/core/bounds.cc.o" "gcc" "src/CMakeFiles/equihist.dir/core/bounds.cc.o.d"
  "/root/repo/src/core/compressed_histogram.cc" "src/CMakeFiles/equihist.dir/core/compressed_histogram.cc.o" "gcc" "src/CMakeFiles/equihist.dir/core/compressed_histogram.cc.o.d"
  "/root/repo/src/core/cvb.cc" "src/CMakeFiles/equihist.dir/core/cvb.cc.o" "gcc" "src/CMakeFiles/equihist.dir/core/cvb.cc.o.d"
  "/root/repo/src/core/density.cc" "src/CMakeFiles/equihist.dir/core/density.cc.o" "gcc" "src/CMakeFiles/equihist.dir/core/density.cc.o.d"
  "/root/repo/src/core/error_metrics.cc" "src/CMakeFiles/equihist.dir/core/error_metrics.cc.o" "gcc" "src/CMakeFiles/equihist.dir/core/error_metrics.cc.o.d"
  "/root/repo/src/core/histogram.cc" "src/CMakeFiles/equihist.dir/core/histogram.cc.o" "gcc" "src/CMakeFiles/equihist.dir/core/histogram.cc.o.d"
  "/root/repo/src/core/histogram_builder.cc" "src/CMakeFiles/equihist.dir/core/histogram_builder.cc.o" "gcc" "src/CMakeFiles/equihist.dir/core/histogram_builder.cc.o.d"
  "/root/repo/src/core/range_estimator.cc" "src/CMakeFiles/equihist.dir/core/range_estimator.cc.o" "gcc" "src/CMakeFiles/equihist.dir/core/range_estimator.cc.o.d"
  "/root/repo/src/data/distribution.cc" "src/CMakeFiles/equihist.dir/data/distribution.cc.o" "gcc" "src/CMakeFiles/equihist.dir/data/distribution.cc.o.d"
  "/root/repo/src/data/generator.cc" "src/CMakeFiles/equihist.dir/data/generator.cc.o" "gcc" "src/CMakeFiles/equihist.dir/data/generator.cc.o.d"
  "/root/repo/src/data/value_set.cc" "src/CMakeFiles/equihist.dir/data/value_set.cc.o" "gcc" "src/CMakeFiles/equihist.dir/data/value_set.cc.o.d"
  "/root/repo/src/data/workload.cc" "src/CMakeFiles/equihist.dir/data/workload.cc.o" "gcc" "src/CMakeFiles/equihist.dir/data/workload.cc.o.d"
  "/root/repo/src/distinct/error.cc" "src/CMakeFiles/equihist.dir/distinct/error.cc.o" "gcc" "src/CMakeFiles/equihist.dir/distinct/error.cc.o.d"
  "/root/repo/src/distinct/estimators.cc" "src/CMakeFiles/equihist.dir/distinct/estimators.cc.o" "gcc" "src/CMakeFiles/equihist.dir/distinct/estimators.cc.o.d"
  "/root/repo/src/distinct/frequency_profile.cc" "src/CMakeFiles/equihist.dir/distinct/frequency_profile.cc.o" "gcc" "src/CMakeFiles/equihist.dir/distinct/frequency_profile.cc.o.d"
  "/root/repo/src/query/index.cc" "src/CMakeFiles/equihist.dir/query/index.cc.o" "gcc" "src/CMakeFiles/equihist.dir/query/index.cc.o.d"
  "/root/repo/src/query/planner.cc" "src/CMakeFiles/equihist.dir/query/planner.cc.o" "gcc" "src/CMakeFiles/equihist.dir/query/planner.cc.o.d"
  "/root/repo/src/sampling/block_sampler.cc" "src/CMakeFiles/equihist.dir/sampling/block_sampler.cc.o" "gcc" "src/CMakeFiles/equihist.dir/sampling/block_sampler.cc.o.d"
  "/root/repo/src/sampling/design_effect.cc" "src/CMakeFiles/equihist.dir/sampling/design_effect.cc.o" "gcc" "src/CMakeFiles/equihist.dir/sampling/design_effect.cc.o.d"
  "/root/repo/src/sampling/row_sampler.cc" "src/CMakeFiles/equihist.dir/sampling/row_sampler.cc.o" "gcc" "src/CMakeFiles/equihist.dir/sampling/row_sampler.cc.o.d"
  "/root/repo/src/sampling/sample.cc" "src/CMakeFiles/equihist.dir/sampling/sample.cc.o" "gcc" "src/CMakeFiles/equihist.dir/sampling/sample.cc.o.d"
  "/root/repo/src/sampling/schedule.cc" "src/CMakeFiles/equihist.dir/sampling/schedule.cc.o" "gcc" "src/CMakeFiles/equihist.dir/sampling/schedule.cc.o.d"
  "/root/repo/src/stats/column_statistics.cc" "src/CMakeFiles/equihist.dir/stats/column_statistics.cc.o" "gcc" "src/CMakeFiles/equihist.dir/stats/column_statistics.cc.o.d"
  "/root/repo/src/stats/join_estimator.cc" "src/CMakeFiles/equihist.dir/stats/join_estimator.cc.o" "gcc" "src/CMakeFiles/equihist.dir/stats/join_estimator.cc.o.d"
  "/root/repo/src/stats/serialization.cc" "src/CMakeFiles/equihist.dir/stats/serialization.cc.o" "gcc" "src/CMakeFiles/equihist.dir/stats/serialization.cc.o.d"
  "/root/repo/src/stats/statistics_manager.cc" "src/CMakeFiles/equihist.dir/stats/statistics_manager.cc.o" "gcc" "src/CMakeFiles/equihist.dir/stats/statistics_manager.cc.o.d"
  "/root/repo/src/storage/heap_file.cc" "src/CMakeFiles/equihist.dir/storage/heap_file.cc.o" "gcc" "src/CMakeFiles/equihist.dir/storage/heap_file.cc.o.d"
  "/root/repo/src/storage/layout.cc" "src/CMakeFiles/equihist.dir/storage/layout.cc.o" "gcc" "src/CMakeFiles/equihist.dir/storage/layout.cc.o.d"
  "/root/repo/src/storage/page.cc" "src/CMakeFiles/equihist.dir/storage/page.cc.o" "gcc" "src/CMakeFiles/equihist.dir/storage/page.cc.o.d"
  "/root/repo/src/storage/scan.cc" "src/CMakeFiles/equihist.dir/storage/scan.cc.o" "gcc" "src/CMakeFiles/equihist.dir/storage/scan.cc.o.d"
  "/root/repo/src/storage/table.cc" "src/CMakeFiles/equihist.dir/storage/table.cc.o" "gcc" "src/CMakeFiles/equihist.dir/storage/table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
