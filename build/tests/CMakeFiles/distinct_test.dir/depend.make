# Empty dependencies file for distinct_test.
# This may be replaced when dependencies are built.
