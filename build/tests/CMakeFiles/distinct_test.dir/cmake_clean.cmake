file(REMOVE_RECURSE
  "CMakeFiles/distinct_test.dir/distinct_error_test.cc.o"
  "CMakeFiles/distinct_test.dir/distinct_error_test.cc.o.d"
  "CMakeFiles/distinct_test.dir/distinct_estimators_test.cc.o"
  "CMakeFiles/distinct_test.dir/distinct_estimators_test.cc.o.d"
  "CMakeFiles/distinct_test.dir/distinct_frequency_profile_test.cc.o"
  "CMakeFiles/distinct_test.dir/distinct_frequency_profile_test.cc.o.d"
  "distinct_test"
  "distinct_test.pdb"
  "distinct_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distinct_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
