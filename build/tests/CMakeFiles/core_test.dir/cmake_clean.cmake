file(REMOVE_RECURSE
  "CMakeFiles/core_test.dir/core_bounds_test.cc.o"
  "CMakeFiles/core_test.dir/core_bounds_test.cc.o.d"
  "CMakeFiles/core_test.dir/core_compressed_histogram_test.cc.o"
  "CMakeFiles/core_test.dir/core_compressed_histogram_test.cc.o.d"
  "CMakeFiles/core_test.dir/core_cvb_test.cc.o"
  "CMakeFiles/core_test.dir/core_cvb_test.cc.o.d"
  "CMakeFiles/core_test.dir/core_density_test.cc.o"
  "CMakeFiles/core_test.dir/core_density_test.cc.o.d"
  "CMakeFiles/core_test.dir/core_error_metrics_test.cc.o"
  "CMakeFiles/core_test.dir/core_error_metrics_test.cc.o.d"
  "CMakeFiles/core_test.dir/core_histogram_builder_test.cc.o"
  "CMakeFiles/core_test.dir/core_histogram_builder_test.cc.o.d"
  "CMakeFiles/core_test.dir/core_histogram_test.cc.o"
  "CMakeFiles/core_test.dir/core_histogram_test.cc.o.d"
  "CMakeFiles/core_test.dir/core_range_estimator_test.cc.o"
  "CMakeFiles/core_test.dir/core_range_estimator_test.cc.o.d"
  "core_test"
  "core_test.pdb"
  "core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
