
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core_bounds_test.cc" "tests/CMakeFiles/core_test.dir/core_bounds_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core_bounds_test.cc.o.d"
  "/root/repo/tests/core_compressed_histogram_test.cc" "tests/CMakeFiles/core_test.dir/core_compressed_histogram_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core_compressed_histogram_test.cc.o.d"
  "/root/repo/tests/core_cvb_test.cc" "tests/CMakeFiles/core_test.dir/core_cvb_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core_cvb_test.cc.o.d"
  "/root/repo/tests/core_density_test.cc" "tests/CMakeFiles/core_test.dir/core_density_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core_density_test.cc.o.d"
  "/root/repo/tests/core_error_metrics_test.cc" "tests/CMakeFiles/core_test.dir/core_error_metrics_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core_error_metrics_test.cc.o.d"
  "/root/repo/tests/core_histogram_builder_test.cc" "tests/CMakeFiles/core_test.dir/core_histogram_builder_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core_histogram_builder_test.cc.o.d"
  "/root/repo/tests/core_histogram_test.cc" "tests/CMakeFiles/core_test.dir/core_histogram_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core_histogram_test.cc.o.d"
  "/root/repo/tests/core_range_estimator_test.cc" "tests/CMakeFiles/core_test.dir/core_range_estimator_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core_range_estimator_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/equihist.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
