file(REMOVE_RECURSE
  "CMakeFiles/sampling_test.dir/sampling_block_sampler_test.cc.o"
  "CMakeFiles/sampling_test.dir/sampling_block_sampler_test.cc.o.d"
  "CMakeFiles/sampling_test.dir/sampling_design_effect_test.cc.o"
  "CMakeFiles/sampling_test.dir/sampling_design_effect_test.cc.o.d"
  "CMakeFiles/sampling_test.dir/sampling_row_sampler_test.cc.o"
  "CMakeFiles/sampling_test.dir/sampling_row_sampler_test.cc.o.d"
  "CMakeFiles/sampling_test.dir/sampling_sample_test.cc.o"
  "CMakeFiles/sampling_test.dir/sampling_sample_test.cc.o.d"
  "CMakeFiles/sampling_test.dir/sampling_schedule_test.cc.o"
  "CMakeFiles/sampling_test.dir/sampling_schedule_test.cc.o.d"
  "sampling_test"
  "sampling_test.pdb"
  "sampling_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sampling_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
