# Empty dependencies file for bench_range_error.
# This may be replaced when dependencies are built.
