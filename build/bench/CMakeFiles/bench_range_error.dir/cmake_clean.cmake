file(REMOVE_RECURSE
  "CMakeFiles/bench_range_error.dir/bench_range_error.cc.o"
  "CMakeFiles/bench_range_error.dir/bench_range_error.cc.o.d"
  "bench_range_error"
  "bench_range_error.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_range_error.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
