# Empty dependencies file for bench_bounds_tradeoff.
# This may be replaced when dependencies are built.
