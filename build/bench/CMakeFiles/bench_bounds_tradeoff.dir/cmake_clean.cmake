file(REMOVE_RECURSE
  "CMakeFiles/bench_bounds_tradeoff.dir/bench_bounds_tradeoff.cc.o"
  "CMakeFiles/bench_bounds_tradeoff.dir/bench_bounds_tradeoff.cc.o.d"
  "bench_bounds_tradeoff"
  "bench_bounds_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bounds_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
