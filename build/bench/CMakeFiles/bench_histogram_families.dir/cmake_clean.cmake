file(REMOVE_RECURSE
  "CMakeFiles/bench_histogram_families.dir/bench_histogram_families.cc.o"
  "CMakeFiles/bench_histogram_families.dir/bench_histogram_families.cc.o.d"
  "bench_histogram_families"
  "bench_histogram_families.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_histogram_families.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
