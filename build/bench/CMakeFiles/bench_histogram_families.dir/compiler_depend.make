# Empty compiler generated dependencies file for bench_histogram_families.
# This may be replaced when dependencies are built.
