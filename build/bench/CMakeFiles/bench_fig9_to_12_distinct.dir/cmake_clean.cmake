file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_to_12_distinct.dir/bench_fig9_to_12_distinct.cc.o"
  "CMakeFiles/bench_fig9_to_12_distinct.dir/bench_fig9_to_12_distinct.cc.o.d"
  "bench_fig9_to_12_distinct"
  "bench_fig9_to_12_distinct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_to_12_distinct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
