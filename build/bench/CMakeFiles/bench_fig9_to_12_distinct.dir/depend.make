# Empty dependencies file for bench_fig9_to_12_distinct.
# This may be replaced when dependencies are built.
