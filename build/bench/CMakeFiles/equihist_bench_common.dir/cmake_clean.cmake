file(REMOVE_RECURSE
  "CMakeFiles/equihist_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/equihist_bench_common.dir/bench_common.cc.o.d"
  "libequihist_bench_common.a"
  "libequihist_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/equihist_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
