file(REMOVE_RECURSE
  "libequihist_bench_common.a"
)
