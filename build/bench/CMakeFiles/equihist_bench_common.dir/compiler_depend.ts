# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for equihist_bench_common.
