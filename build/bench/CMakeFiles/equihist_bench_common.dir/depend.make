# Empty dependencies file for equihist_bench_common.
# This may be replaced when dependencies are built.
