# Empty dependencies file for bench_fig7_clustering.
# This may be replaced when dependencies are built.
