file(REMOVE_RECURSE
  "CMakeFiles/bench_example_metrics.dir/bench_example_metrics.cc.o"
  "CMakeFiles/bench_example_metrics.dir/bench_example_metrics.cc.o.d"
  "bench_example_metrics"
  "bench_example_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_example_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
