# Empty dependencies file for bench_example_metrics.
# This may be replaced when dependencies are built.
