# Empty dependencies file for bench_fig6_bins.
# This may be replaced when dependencies are built.
