file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_bins.dir/bench_fig6_bins.cc.o"
  "CMakeFiles/bench_fig6_bins.dir/bench_fig6_bins.cc.o.d"
  "bench_fig6_bins"
  "bench_fig6_bins.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_bins.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
