# Empty dependencies file for bench_fig3_fig4_vary_n.
# This may be replaced when dependencies are built.
