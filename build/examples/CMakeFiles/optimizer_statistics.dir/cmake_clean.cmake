file(REMOVE_RECURSE
  "CMakeFiles/optimizer_statistics.dir/optimizer_statistics.cpp.o"
  "CMakeFiles/optimizer_statistics.dir/optimizer_statistics.cpp.o.d"
  "optimizer_statistics"
  "optimizer_statistics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimizer_statistics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
