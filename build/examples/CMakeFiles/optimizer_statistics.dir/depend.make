# Empty dependencies file for optimizer_statistics.
# This may be replaced when dependencies are built.
