# Empty compiler generated dependencies file for analyze_tool.
# This may be replaced when dependencies are built.
