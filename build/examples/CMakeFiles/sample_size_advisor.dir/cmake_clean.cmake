file(REMOVE_RECURSE
  "CMakeFiles/sample_size_advisor.dir/sample_size_advisor.cpp.o"
  "CMakeFiles/sample_size_advisor.dir/sample_size_advisor.cpp.o.d"
  "sample_size_advisor"
  "sample_size_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sample_size_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
