# Empty dependencies file for sample_size_advisor.
# This may be replaced when dependencies are built.
