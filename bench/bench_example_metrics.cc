// EX1 / EX2: regenerates the worked examples of Section 2 — the numbers
// that motivate the max error metric.
//
// Example 1: error-bound blow-up factors for range estimation under
//            average/variance-bounded histograms (k=1000, f=0.05, t=10).
// Example 2: Delta_avg / Delta_var / Delta_max of the 10-bucket histogram
//            {88,101,87,88,89,180,90,88,103,86}, and the estimation-error
//            factors 13.5 / 2.8 / 1.05 of the continued example.

#include <cstdio>
#include <vector>

#include "bench_common.h"

using namespace equihist;

namespace {

void Example1() {
  std::printf("--- Example 1 (Section 2.2) ---\n");
  const std::uint64_t n = 1000000;  // any n: factors are n-free
  const std::uint64_t k = 1000;
  const double f = 0.05;
  const double t = 10.0;

  const double perfect = PerfectHistogramAbsoluteErrorBound(n, k);
  const double avg = AvgErrorHistogramAbsoluteErrorFloor(n, k, f);
  const double var = VarErrorHistogramAbsoluteErrorFloor(n, k, f, t);
  const double max = MaxErrorHistogramAbsoluteErrorBound(n, k, f);

  std::printf("k=%llu, f=%.2f, query output s = t*n/k with t=%.0f\n\n",
              static_cast<unsigned long long>(k), f, t);
  std::printf("%-34s %14s %14s %10s\n", "histogram guarantee", "abs error",
              "rel error", "factor");
  auto row = [&](const char* name, double abs) {
    const double s = t * static_cast<double>(n) / static_cast<double>(k);
    std::printf("%-34s %11.4f*n %14.3f %9.2fx\n", name,
                abs / static_cast<double>(n), abs / s, abs / perfect);
  };
  row("perfect equi-height (Thm 1.1)", perfect);
  row("avg error <= f*n/k (Thm 1.2)", avg);
  row("var error <= f*n/k (Thm 1.3)", var);
  row("max error <= f*n/k (Thm 3)", max);
  std::printf("\npaper: perfect 0.002n / 0.2; avg-bounded 13.5x; "
              "var-bounded 2.8x; max-bounded 1.05x\n\n");
}

void Example2() {
  std::printf("--- Example 2 (Section 2.3) ---\n");
  const std::vector<std::uint64_t> sizes = {88, 101, 87, 88, 89,
                                            180, 90, 88, 103, 86};
  const auto report = ComputeBucketErrors(sizes);
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return;
  }
  std::printf("bucket sizes: 88 101 87 88 89 180 90 88 103 86 (n=1000, "
              "k=10)\n\n");
  std::printf("%-18s %10s %10s\n", "metric", "measured", "paper");
  std::printf("%-18s %10.1f %10s\n", "Delta_avg", report->delta_avg, "16.8");
  std::printf("%-18s %10.1f %10s\n", "Delta_var", report->delta_var, "27.5");
  std::printf("%-18s %10.1f %10s\n", "Delta_max", report->delta_max, "80.0");
  std::printf("\nTheorem 2 ordering Delta_avg <= Delta_var <= Delta_max: %s\n",
              (report->delta_avg <= report->delta_var &&
               report->delta_var <= report->delta_max)
                  ? "holds"
                  : "VIOLATED");
  std::printf("\nas k grows the gap between the metrics is unbounded "
              "(Example 2's closing remark):\n");
  for (std::uint64_t k : {10u, 100u, 1000u}) {
    // One bucket holds 2x the ideal, the rest share the deficit evenly:
    // Delta_max stays n/k while Delta_avg shrinks like 2n/k^2.
    std::vector<std::uint64_t> skewed(k, 0);
    const std::uint64_t n = 1000 * k;
    const std::uint64_t ideal = n / k;
    skewed[0] = 2 * ideal;
    for (std::uint64_t j = 1; j < k; ++j) {
      skewed[j] = ideal - ideal / (k - 1);
    }
    const auto r = ComputeBucketErrors(skewed);
    std::printf("  k=%-5llu Delta_max/Delta_avg = %8.1f\n",
                static_cast<unsigned long long>(k),
                r->delta_max / r->delta_avg);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  bench::PrintBanner("EX1/EX2", "Section 2 worked examples (error metrics)",
                     bench::GetScale());
  Example1();
  Example2();
  return 0;
}
