#include "bench_common.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>

namespace equihist::bench {

Scale GetScale(int argc, char** argv) {
  Scale scale;
  const char* env = std::getenv("EQUIHIST_FULL_SCALE");
  scale.full = (env != nullptr && env[0] == '1');
  const char* smoke_env = std::getenv("EQUIHIST_SMOKE");
  scale.smoke = (smoke_env != nullptr && smoke_env[0] == '1');
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") scale.smoke = true;
  }
  if (scale.smoke) {
    scale.full = false;
    scale.default_n = 20000;
    scale.k = 16;
    scale.n_sweep = {10000, 20000};
  } else if (scale.full) {
    scale.default_n = 10000000;
    scale.k = 600;
    scale.n_sweep = {5000000, 10000000, 15000000, 20000000};
  } else {
    scale.default_n = 1000000;
    scale.k = 100;
    scale.n_sweep = {500000, 1000000, 1500000, 2000000};
  }
  return scale;
}

unsigned HostConcurrency() {
  static const unsigned cores = []() {
    const unsigned hc = std::thread::hardware_concurrency();
    const unsigned normalized = hc == 0 ? 1u : hc;
    if (normalized <= 1) {
      std::fprintf(
          stderr,
          "*************************************************************\n"
          "* WARNING: this host reports hardware_concurrency=%u.       *\n"
          "* Parallel-scaling and batch-QPS sections below measure     *\n"
          "* scheduling overhead, NOT parallel speedup. Single-thread  *\n"
          "* ns/query numbers remain meaningful.                       *\n"
          "*************************************************************\n",
          normalized);
    }
    return normalized;
  }();
  return cores;
}

void WriteBenchJson(const std::string& path, const std::string& json) {
  if (json.find("\"hardware_concurrency\"") == std::string::npos) {
    std::fprintf(stderr,
                 "FATAL: %s does not record hardware_concurrency; the "
                 "perf-regression gate cannot interpret it\n",
                 path.c_str());
    std::abort();
  }
  HostConcurrency();  // surface the single-core warning next to the write
  std::ofstream out(path);
  out << json;
}

void PrintBanner(const std::string& experiment_id, const std::string& title,
                 const Scale& scale) {
  std::printf("=============================================================\n");
  std::printf("%s: %s\n", experiment_id.c_str(), title.c_str());
  std::printf("scale: %s (set EQUIHIST_FULL_SCALE=1 for the paper's sizes)\n",
              scale.smoke ? "SMOKE (CI)"
                          : (scale.full ? "FULL (paper)" : "fast"));
  std::printf("=============================================================\n\n");
}

Dataset MakeZipfDataset(std::uint64_t n, double skew, LayoutKind layout,
                        std::uint32_t record_size_bytes, std::uint64_t seed,
                        double clustered_fraction) {
  auto freq = MakeZipf({.n = n,
                        .domain_size = n / 100,
                        .skew = skew,
                        .seed = seed});
  if (!freq.ok()) {
    std::fprintf(stderr, "data generation failed: %s\n",
                 freq.status().ToString().c_str());
    std::exit(1);
  }
  LayoutSpec layout_spec{.kind = layout,
                         .clustered_fraction = clustered_fraction,
                         .seed = seed + 1};
  auto table = Table::Create(*freq, PageConfig{8192, record_size_bytes},
                             layout_spec);
  if (!table.ok()) {
    std::fprintf(stderr, "table build failed: %s\n",
                 table.status().ToString().c_str());
    std::exit(1);
  }
  // Build the ValueSet before moving the frequencies into the struct:
  // braced-init evaluates members left to right, so inlining the call
  // would read a moved-from FrequencyVector.
  ValueSet truth = ValueSet::FromFrequencies(*freq);
  return Dataset{std::move(*freq), std::move(truth), std::move(*table)};
}

Dataset MakeUnifDupDataset(std::uint64_t n, std::uint64_t distinct,
                           LayoutKind layout, std::uint32_t record_size_bytes,
                           std::uint64_t seed) {
  auto freq = MakeUniformDup(n, distinct);
  if (!freq.ok()) {
    std::fprintf(stderr, "data generation failed: %s\n",
                 freq.status().ToString().c_str());
    std::exit(1);
  }
  LayoutSpec layout_spec{.kind = layout, .seed = seed + 1};
  auto table = Table::Create(*freq, PageConfig{8192, record_size_bytes},
                             layout_spec);
  if (!table.ok()) {
    std::fprintf(stderr, "table build failed: %s\n",
                 table.status().ToString().c_str());
    std::exit(1);
  }
  ValueSet truth = ValueSet::FromFrequencies(*freq);
  return Dataset{std::move(*freq), std::move(truth), std::move(*table)};
}

double MeasuredErrorAtBlocks(const Dataset& dataset, std::uint64_t blocks,
                             std::uint64_t k, int trials,
                             std::uint64_t seed0) {
  std::vector<double> errors;
  errors.reserve(trials);
  for (int trial = 0; trial < trials; ++trial) {
    Rng rng(seed0 + static_cast<std::uint64_t>(trial) * 1000003);
    auto sample =
        SampleBlocksWithoutReplacement(dataset.table, blocks, rng, nullptr);
    if (!sample.ok()) {
      std::fprintf(stderr, "sampling failed: %s\n",
                   sample.status().ToString().c_str());
      std::exit(1);
    }
    std::sort(sample->begin(), sample->end());
    auto histogram =
        BuildHistogramFromSample(*sample, k, dataset.truth.size());
    if (!histogram.ok()) {
      std::fprintf(stderr, "histogram build failed: %s\n",
                   histogram.status().ToString().c_str());
      std::exit(1);
    }
    errors.push_back(FractionalErrorVsPopulation(*histogram, dataset.truth));
  }
  // Median: the max-over-segments statistic is right-skewed, so the mean
  // would be dominated by one unlucky seed.
  std::sort(errors.begin(), errors.end());
  const std::size_t mid = errors.size() / 2;
  if (errors.size() % 2 == 1) return errors[mid];
  return 0.5 * (errors[mid - 1] + errors[mid]);
}

std::uint64_t BlocksForTargetError(const Dataset& dataset, double target_error,
                                   std::uint64_t k, int trials,
                                   std::uint64_t seed0) {
  const std::uint64_t max_blocks = dataset.table.page_count();
  // Exponential search for an upper bracket.
  std::uint64_t hi = 4;
  while (hi < max_blocks &&
         MeasuredErrorAtBlocks(dataset, hi, k, trials, seed0) > target_error) {
    hi *= 2;
  }
  if (hi >= max_blocks) {
    if (MeasuredErrorAtBlocks(dataset, max_blocks, k, trials, seed0) >
        target_error) {
      return max_blocks;
    }
    hi = max_blocks;
  }
  std::uint64_t lo = hi / 2;
  // Bisect to ~10% precision; the measurement is noisy so finer is futile.
  while (hi > lo + std::max<std::uint64_t>(1, lo / 10)) {
    const std::uint64_t mid = lo + (hi - lo) / 2;
    if (MeasuredErrorAtBlocks(dataset, mid, k, trials, seed0) <= target_error) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

}  // namespace equihist::bench
