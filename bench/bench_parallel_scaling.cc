// PERF2: strong-scaling study of the parallel construction engine —
// full-scan statistics builds and CVB sampled builds at 1/2/4/8 worker
// threads over the paper's default Zipf column. For every thread count the
// resulting histogram is checked bit-identical to the single-threaded
// build (the engine's core guarantee), so the speedups are for the *same*
// answer, not a relaxed one.
//
// Emits a machine-readable JSON report (BENCH_parallel_scaling.json in the
// working directory, mirrored to stdout) including the host's hardware
// concurrency: scaling numbers are only meaningful relative to the cores
// that were actually available.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <memory>
#include <optional>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/thread_pool.h"
#include "stats/column_statistics.h"

namespace {

using namespace equihist;
using bench::Dataset;

constexpr std::uint64_t kThreadCounts[] = {1, 2, 4, 8};
constexpr int kReps = 3;  // best-of, to shed scheduler noise

double TimeMs(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(end - start).count();
}

bool SameHistogram(const Histogram& a, const Histogram& b) {
  return a.separators() == b.separators() && a.counts() == b.counts() &&
         a.lower_fence() == b.lower_fence() &&
         a.upper_fence() == b.upper_fence();
}

struct Measurement {
  std::uint64_t threads = 0;
  double best_ms = 0.0;
  bool identical = true;  // histogram matches the threads=1 run bit-for-bit
};

struct WorkloadReport {
  std::string name;
  std::vector<Measurement> runs;
};

// Runs `build` (which returns the built histogram) at every thread count,
// checking each result against the single-threaded reference.
template <typename BuildFn>
WorkloadReport RunWorkload(const std::string& name, const BuildFn& build) {
  WorkloadReport report{.name = name, .runs = {}};
  std::optional<Histogram> reference;
  for (const std::uint64_t threads : kThreadCounts) {
    Measurement m{.threads = threads};
    std::optional<Histogram> latest;
    double best = -1.0;
    for (int rep = 0; rep < kReps; ++rep) {
      const double ms = TimeMs([&]() { latest = build(threads); });
      if (best < 0.0 || ms < best) best = ms;
    }
    m.best_ms = best;
    if (threads == 1) {
      reference = std::move(latest);
    } else {
      m.identical = SameHistogram(*latest, *reference);
    }
    report.runs.push_back(m);
    std::cerr << "  " << name << " threads=" << threads << " best_ms=" << best
              << (m.identical ? "" : "  ** MISMATCH vs threads=1 **") << "\n";
  }
  return report;
}

std::string ToJson(const std::vector<WorkloadReport>& workloads,
                   const bench::Scale& scale) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"bench\": \"parallel_scaling\",\n";
  os << "  \"full_scale\": " << (scale.full ? "true" : "false") << ",\n";
  os << "  \"n\": " << scale.default_n << ",\n";
  os << "  \"buckets\": " << scale.k << ",\n";
  os << "  \"host\": {\"hardware_concurrency\": " << bench::HostConcurrency()
     << "},\n";
  os << "  \"workloads\": [\n";
  for (std::size_t w = 0; w < workloads.size(); ++w) {
    const WorkloadReport& report = workloads[w];
    const double base_ms = report.runs.empty() ? 0.0 : report.runs[0].best_ms;
    os << "    {\"name\": \"" << report.name << "\", \"results\": [\n";
    for (std::size_t i = 0; i < report.runs.size(); ++i) {
      const Measurement& m = report.runs[i];
      const double speedup = m.best_ms > 0.0 ? base_ms / m.best_ms : 0.0;
      os << "      {\"threads\": " << m.threads << ", \"best_ms\": " << m.best_ms
         << ", \"speedup_vs_1\": " << speedup
         << ", \"identical_to_single_thread\": "
         << (m.identical ? "true" : "false") << "}"
         << (i + 1 < report.runs.size() ? "," : "") << "\n";
    }
    os << "    ]}" << (w + 1 < workloads.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  return os.str();
}

}  // namespace

int main() {
  const bench::Scale scale = bench::GetScale();
  bench::PrintBanner("PERF2", "Parallel engine strong scaling", scale);

  const Dataset random = bench::MakeZipfDataset(scale.default_n, /*skew=*/1.0,
                                                LayoutKind::kRandom);
  const Dataset sorted = bench::MakeZipfDataset(scale.default_n, /*skew=*/1.0,
                                                LayoutKind::kSorted);

  std::vector<WorkloadReport> workloads;

  workloads.push_back(RunWorkload(
      "full_scan_build", [&](std::uint64_t threads) -> Histogram {
        std::unique_ptr<ThreadPool> pool;
        if (threads > 1) pool = std::make_unique<ThreadPool>(threads);
        auto stats =
            BuildStatisticsFullScan(random.table, scale.k, pool.get());
        if (!stats.ok()) {
          std::cerr << "full-scan build failed: "
                    << stats.status().ToString() << "\n";
          std::exit(1);
        }
        return stats->histogram();
      }));

  const auto cvb_workload = [&](const std::string& name,
                                const Dataset& dataset) {
    return RunWorkload(name, [&](std::uint64_t threads) -> Histogram {
      CvbOptions options;
      options.k = scale.k;
      options.f = 0.1;
      options.threads = threads;
      auto result = RunCvb(dataset.table, options);
      if (!result.ok()) {
        std::cerr << name << " failed: " << result.status().ToString() << "\n";
        std::exit(1);
      }
      return std::move(result->histogram);
    });
  };
  workloads.push_back(cvb_workload("cvb_random_layout", random));
  workloads.push_back(cvb_workload("cvb_sorted_layout", sorted));

  bool all_identical = true;
  for (const WorkloadReport& report : workloads) {
    for (const Measurement& m : report.runs) all_identical &= m.identical;
  }

  const std::string json = ToJson(workloads, scale);
  std::cout << json;
  bench::WriteBenchJson("BENCH_parallel_scaling.json", json);
  std::cerr << (all_identical
                    ? "all thread counts produced bit-identical histograms\n"
                    : "ERROR: histogram mismatch across thread counts\n");
  return all_identical ? 0 : 1;
}
