// PERF: google-benchmark microbenchmarks for the library's hot paths —
// construction throughput numbers a user evaluating this library would ask
// for. Not a paper figure; complements the experiment harnesses.

#include <algorithm>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace {

using namespace equihist;

const FrequencyVector& SharedFrequencies() {
  static const FrequencyVector* fv = [] {
    auto result = MakeZipf({.n = 1000000, .domain_size = 10000, .skew = 1.0});
    return new FrequencyVector(std::move(*result));
  }();
  return *fv;
}

const ValueSet& SharedValueSet() {
  static const ValueSet* set =
      new ValueSet(ValueSet::FromFrequencies(SharedFrequencies()));
  return *set;
}

const Table& SharedTable() {
  static const Table* table = [] {
    auto result = Table::Create(SharedFrequencies(), PageConfig{8192, 64},
                                {.kind = LayoutKind::kRandom});
    return new Table(std::move(*result));
  }();
  return *table;
}

void BM_ZipfGeneration(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    auto fv = MakeZipf({.n = n, .domain_size = n / 100, .skew = 2.0});
    benchmark::DoNotOptimize(fv);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ZipfGeneration)->Arg(100000)->Arg(1000000);

void BM_RowSampleWithReplacement(benchmark::State& state) {
  const auto r = static_cast<std::uint64_t>(state.range(0));
  const auto& values = SharedValueSet().sorted_values();
  Rng rng(1);
  for (auto _ : state) {
    auto sample = SampleRowsWithReplacement(values, r, rng);
    benchmark::DoNotOptimize(sample);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(r));
}
BENCHMARK(BM_RowSampleWithReplacement)->Arg(10000)->Arg(100000);

void BM_BlockSample(benchmark::State& state) {
  const auto blocks = static_cast<std::uint64_t>(state.range(0));
  Rng rng(2);
  for (auto _ : state) {
    auto sample =
        SampleBlocksWithoutReplacement(SharedTable(), blocks, rng, nullptr);
    benchmark::DoNotOptimize(sample);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(blocks) *
                          SharedTable().tuples_per_page());
}
BENCHMARK(BM_BlockSample)->Arg(100)->Arg(1000);

void BM_BuildHistogramFromSample(benchmark::State& state) {
  const auto r = static_cast<std::uint64_t>(state.range(0));
  Rng rng(3);
  auto sample = SampleRowsWithReplacement(SharedValueSet().sorted_values(),
                                          r, rng);
  std::sort(sample.begin(), sample.end());
  for (auto _ : state) {
    auto histogram = BuildHistogramFromSample(sample, 600, 1000000);
    benchmark::DoNotOptimize(histogram);
  }
}
BENCHMARK(BM_BuildHistogramFromSample)->Arg(10000)->Arg(100000);

void BM_BuildPerfectHistogram(benchmark::State& state) {
  for (auto _ : state) {
    auto histogram = BuildPerfectHistogram(SharedValueSet(), 600);
    benchmark::DoNotOptimize(histogram);
  }
}
BENCHMARK(BM_BuildPerfectHistogram);

void BM_PartitionCounts(benchmark::State& state) {
  const auto histogram = BuildPerfectHistogram(SharedValueSet(), 600);
  for (auto _ : state) {
    auto counts = histogram->PartitionCounts(SharedValueSet());
    benchmark::DoNotOptimize(counts);
  }
}
BENCHMARK(BM_PartitionCounts);

void BM_RangeEstimate(benchmark::State& state) {
  const auto histogram = BuildPerfectHistogram(SharedValueSet(), 600);
  ValueSet data = ValueSet::FromFrequencies(SharedFrequencies());
  RangeWorkloadGenerator gen(&data, 5);
  const auto queries = gen.UniformRanges(1024);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        EstimateRangeCount(*histogram, queries[i++ & 1023]));
  }
}
BENCHMARK(BM_RangeEstimate);

void BM_SampleMerge(benchmark::State& state) {
  Rng rng(6);
  const auto base = SampleRowsWithReplacement(
      SharedValueSet().sorted_values(), 100000, rng);
  const auto batch = SampleRowsWithReplacement(
      SharedValueSet().sorted_values(), 100000, rng);
  for (auto _ : state) {
    Sample sample(base);
    sample.Merge(batch);
    benchmark::DoNotOptimize(sample);
  }
}
BENCHMARK(BM_SampleMerge);

void BM_FractionalError(benchmark::State& state) {
  Rng rng(7);
  auto sample = SampleRowsWithReplacement(SharedValueSet().sorted_values(),
                                          50000, rng);
  std::sort(sample.begin(), sample.end());
  const auto histogram = BuildHistogramFromSample(sample, 600, 1000000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        FractionalErrorVsPopulation(*histogram, SharedValueSet()));
  }
}
BENCHMARK(BM_FractionalError);

void BM_DistinctEstimators(benchmark::State& state) {
  Rng rng(8);
  auto sample = SampleRowsWithReplacement(SharedValueSet().sorted_values(),
                                          100000, rng);
  const auto profile = FrequencyProfile::FromUnsorted(std::move(sample));
  for (auto _ : state) {
    benchmark::DoNotOptimize(PaperEstimator(profile, 1000000));
    benchmark::DoNotOptimize(ChaoLeeEstimator(profile, 1000000));
    benchmark::DoNotOptimize(ShlosserEstimator(profile, 1000000));
  }
}
BENCHMARK(BM_DistinctEstimators);

void BM_CvbEndToEnd(benchmark::State& state) {
  for (auto _ : state) {
    CvbOptions options;
    options.k = 200;
    options.f = 0.2;
    options.seed = 9;
    auto result = RunCvb(SharedTable(), options);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_CvbEndToEnd)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
