// THM8: the Theorem 8 lower bound on distinct-value estimation, and an
// empirical demonstration of why it holds and why the paper's estimator is
// (near-)optimal against it.
//
// The hard family: columns where every value occurs exactly m times, for
// m between 1 and n/r. A random sample of size r from any of them looks
// like "mostly singletons", yet d = n/m ranges over a factor of n/r. Any
// single estimate e must therefore be off by ~sqrt(n/r) on one of them;
// the paper's sqrt(n/r)*f1 term is the geometric midpoint that equalizes
// (and thus minimizes) the worst-case ratio error.

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_common.h"

using namespace equihist;

int main() {
  const bench::Scale scale = bench::GetScale();
  bench::PrintBanner("THM8",
                     "Theorem 8: worst-case floor for distinct-value "
                     "estimation",
                     scale);

  const std::uint64_t n = scale.default_n;

  std::printf("--- the analytic floor, gamma = 0.5 ---\n");
  std::printf("%14s %18s\n", "sampling rate", "ratio-error floor");
  for (double rate : {0.01, 0.05, 0.2, 0.5}) {
    const auto bound = DistinctValueErrorLowerBound(
        n, static_cast<std::uint64_t>(rate * static_cast<double>(n)), 0.5);
    std::printf("%13.0f%% %18.2f\n", rate * 100.0, *bound);
  }
  std::printf("\npaper's calibration: at r = 0.2n the floor is 1.86, in the "
              "same regime as the\nmax error 2.86 Haas et al observed over "
              "24 high-skew datasets.\n\n");

  std::printf("--- the hard family, empirically (r = 1%% of n) ---\n");
  const std::uint64_t r = n / 100;
  const auto mid = static_cast<std::uint64_t>(
      std::sqrt(static_cast<double>(n) / static_cast<double>(r)));
  std::printf("%14s %12s | %12s %11s | %12s %11s\n", "multiplicity m",
              "true d", "paper est", "ratio err", "naive D*n/r", "ratio err");
  double paper_worst = 1.0;
  double naive_worst = 1.0;
  for (std::uint64_t m :
       {std::uint64_t{1}, mid, static_cast<std::uint64_t>(n / r)}) {
    // Column: every value occurs exactly m times (d = n/m values).
    const std::uint64_t d = n / m;
    auto freq = MakeUniformDup(d * m, d);
    const ValueSet data = ValueSet::FromFrequencies(*freq);
    Rng rng(17 + m);
    auto sample = SampleRowsWithoutReplacement(data.sorted_values(), r, rng);
    const auto profile = FrequencyProfile::FromUnsorted(std::move(*sample));
    const auto paper = PaperEstimator(profile, data.size());
    const auto naive = NaiveScaleUp(profile, data.size());
    const double paper_err = *RatioError(*paper, d);
    const double naive_err = *RatioError(*naive, d);
    paper_worst = std::max(paper_worst, paper_err);
    naive_worst = std::max(naive_worst, naive_err);
    std::printf("%14llu %12s | %12.0f %11.2f | %12.0f %11.2f\n",
                static_cast<unsigned long long>(m),
                FormatWithThousands(d).c_str(), *paper, paper_err, *naive,
                naive_err);
  }
  const double floor = std::sqrt(static_cast<double>(n) / static_cast<double>(r));
  std::printf("\nworst ratio error across the family: paper estimator %.2f, "
              "naive scale-up %.2f\nsqrt(n/r) = %.1f: the paper estimator's "
              "worst case sits near sqrt(n/r) on both ends\n(optimal "
              "balance); the naive estimator is catastrophically wrong on "
              "one end.\n",
              paper_worst, naive_worst, floor);
  return 0;
}
