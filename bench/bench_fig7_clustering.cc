// Figure 7: max error vs sampling rate for random vs partially-clustered
// layouts (Z=2, k=600). The paper's point: with 20% of each value's
// duplicates co-located on disk, a higher sampling rate is needed for the
// same error — and the adaptive algorithm detects this via failed
// cross-validation rounds and simply samples more.

#include <cstdio>
#include <vector>

#include "bench_common.h"

using namespace equihist;

int main() {
  const bench::Scale scale = bench::GetScale();
  bench::PrintBanner(
      "FIG7", "max error vs sampling rate, random vs partially-clustered",
      scale);

  const std::uint64_t n = scale.default_n;
  const int trials = scale.full ? 3 : 5;
  bench::Dataset random_set =
      bench::MakeZipfDataset(n, 2.0, LayoutKind::kRandom);
  bench::Dataset clustered_set = bench::MakeZipfDataset(
      n, 2.0, LayoutKind::kPartiallyClustered, 64, 42, 0.2);

  std::printf("N=%s, k=%llu, Zipf Z=2; clustered layout co-locates 20%% of "
              "each value's duplicates\n\n",
              FormatWithThousands(n).c_str(),
              static_cast<unsigned long long>(scale.k));
  std::printf("%14s | %12s %20s\n", "sampling rate", "random",
              "partially-clustered");
  for (double rate : {0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2}) {
    const auto blocks_random = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               rate * static_cast<double>(random_set.table.page_count())));
    const auto blocks_clustered = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               rate * static_cast<double>(clustered_set.table.page_count())));
    std::printf("%13.1f%% | %12.4f %20.4f\n", rate * 100.0,
                bench::MeasuredErrorAtBlocks(random_set, blocks_random,
                                             scale.k, trials, 7),
                bench::MeasuredErrorAtBlocks(clustered_set, blocks_clustered,
                                             scale.k, trials, 7));
  }

  // Why: the measured intra-block correlation (survey-sampling design
  // effect; Section 4.1's effective-sampling-rate factor x, quantified).
  std::printf("\nmeasured block correlation (64-block probe):\n");
  std::printf("%-22s %10s %16s %22s\n", "layout", "rho", "design effect",
              "block budget multiple");
  for (const auto* dataset : {&random_set, &clustered_set}) {
    const auto deff = EstimateDesignEffect(dataset->table, 64, 7);
    if (!deff.ok()) continue;
    std::printf("%-22s %10.3f %16.1f %21.1fx\n",
                dataset == &random_set ? "random" : "partially-clustered",
                deff->rho, deff->design_effect,
                deff->BlockBudgetMultiplier());
  }

  // The adaptive view: what does CVB spend on each layout for equal f?
  std::printf("\nadaptive CVB at f = 0.2:\n");
  std::printf("%-22s %14s %16s %12s\n", "layout", "sampling rate",
              "blocks sampled", "iterations");
  for (const auto* dataset : {&random_set, &clustered_set}) {
    CvbOptions options;
    options.k = scale.k;
    options.f = 0.2;
    options.seed = 77;
    const auto result = RunCvb(dataset->table, options);
    if (!result.ok()) {
      std::fprintf(stderr, "CVB failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("%-22s %13.2f%% %16s %12llu\n",
                dataset == &random_set ? "random" : "partially-clustered",
                100.0 * result->sampling_fraction,
                FormatWithThousands(result->blocks_sampled).c_str(),
                static_cast<unsigned long long>(result->iterations));
  }

  std::printf("\nexpected shape (paper): at every rate the clustered column "
              "shows a higher error, so\nreaching a given error needs a "
              "higher rate; CVB spends correspondingly more blocks\n"
              "(Figure 7).\n");
  return 0;
}
