// BASE: baselines the paper positions itself against.
//
//   (a) equi-width vs equi-height at the same bucket budget: the classical
//       argument for the equi-height family SQL Server uses (Section 1).
//   (b) GMP incremental maintenance (Section 3.4's comparison target, our
//       implementation of Gibbons-Matias-Poosala) vs periodically
//       rebuilding from a bounded random sample with the Theorem 4 budget:
//       error after a full insert stream, plus the maintenance bill.

#include <algorithm>
#include <cstdio>

#include "bench_common.h"

using namespace equihist;

namespace {

void EquiWidthVsEquiHeight(const bench::Scale& scale) {
  std::printf("--- (a) equi-width vs equi-height, same bucket budget ---\n");
  const std::uint64_t n = scale.default_n / 2;
  const std::uint64_t k = scale.k;
  std::printf("N=%s, k=%llu, 2000 range queries per distribution\n\n",
              FormatWithThousands(n).c_str(),
              static_cast<unsigned long long>(k));
  std::printf("%8s | %22s | %22s\n", "skew Z", "equi-width max |err|",
              "equi-height max |err|");
  for (double skew : {0.0, 1.0, 2.0}) {
    const auto freq =
        MakeZipf({.n = n,
                  .domain_size = n / 20,
                  .skew = skew,
                  .placement = FrequencyPlacement::kDecreasing});
    const ValueSet data = ValueSet::FromFrequencies(*freq);
    const auto width = EquiWidthHistogram::Build(data, k);
    const auto height = BuildPerfectHistogram(data, k);
    RangeWorkloadGenerator gen(&data, 17);
    const auto queries = gen.UniformRanges(2000);
    double width_worst = 0.0;
    double height_worst = 0.0;
    for (const RangeQuery& q : queries) {
      const double actual = static_cast<double>(data.CountInRange(q.lo, q.hi));
      width_worst = std::max(
          width_worst, std::abs(width->EstimateRangeCount(q) - actual));
      height_worst = std::max(
          height_worst, std::abs(EstimateRangeCount(*height, q) - actual));
    }
    std::printf("%8.1f | %22.1f | %22.1f\n", skew, width_worst, height_worst);
  }
  std::printf("\nexpected shape: comparable on uniform data; equi-width "
              "degrades sharply with skew\nwhile equi-height stays near its "
              "2n/k guarantee.\n\n");
}

void GmpVsRebuild(const bench::Scale& scale) {
  std::printf("--- (b) GMP incremental maintenance vs sample rebuild ---\n");
  const std::uint64_t n = scale.default_n / 2;
  const std::uint64_t k = scale.full ? 100 : 50;
  const auto freq =
      MakeZipf({.n = n, .domain_size = n / 20, .skew = 1.0, .seed = 5});
  const ValueSet truth = ValueSet::FromFrequencies(*freq);
  const auto stream = ExpandShuffled(*freq, 23);

  // GMP: maintain while streaming.
  auto maintained = IncrementalEquiDepth::Create(
      {.buckets = k, .gamma = 0.5, .reservoir_capacity = 20000, .seed = 7});
  Timer gmp_timer;
  for (Value v : stream) maintained->Insert(v);
  const double gmp_ms = gmp_timer.ElapsedMillis();
  const auto gmp_snapshot = maintained->Snapshot();
  const auto gmp_errors = ComputeHistogramErrors(*gmp_snapshot, truth);

  // Rebuild: one Theorem 4 sample at the end.
  const auto r = DeviationSampleSize(n, k, /*f=*/0.1, /*gamma=*/0.01);
  Rng rng(29);
  Timer rebuild_timer;
  auto sample = SampleRowsWithReplacement(truth.sorted_values(),
                                          std::min(*r, n), rng);
  std::sort(sample.begin(), sample.end());
  const auto rebuilt = BuildHistogramFromSample(sample, k, n);
  const double rebuild_ms = rebuild_timer.ElapsedMillis();
  const auto rebuilt_errors = ComputeHistogramErrors(*rebuilt, truth);

  std::printf("N=%s inserts, k=%llu, Zipf Z=1\n\n",
              FormatWithThousands(n).c_str(),
              static_cast<unsigned long long>(k));
  std::printf("%-26s %10s %10s %10s %12s\n", "strategy", "f_avg", "f_var",
              "f_max", "cost");
  std::printf("%-26s %10.3f %10.3f %10.3f %9.0f ms (stream)\n",
              "GMP incremental", gmp_errors->f_avg, gmp_errors->f_var,
              gmp_errors->f_max, gmp_ms);
  std::printf("  splits=%llu merges=%llu recomputes=%llu\n",
              static_cast<unsigned long long>(maintained->split_count()),
              static_cast<unsigned long long>(maintained->merge_count()),
              static_cast<unsigned long long>(maintained->recompute_count()));
  std::printf("%-26s %10.3f %10.3f %10.3f %9.0f ms (%s tuples)\n",
              "Theorem 4 sample rebuild", rebuilt_errors->f_avg,
              rebuilt_errors->f_var, rebuilt_errors->f_max, rebuild_ms,
              FormatWithThousands(sample.size()).c_str());
  std::printf(
      "\nexpected shape (Section 3.4's argument, empirically): the one-shot "
      "sampling rebuild\nmatches or beats the incrementally maintained "
      "histogram's max error, with a simple\nbounded-size sample — the "
      "paper's bounds make the rebuild budget predictable.\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Scale scale = bench::GetScale(argc, argv);
  bench::PrintBanner("BASE",
                     "baselines: equi-width histograms and GMP incremental "
                     "maintenance",
                     scale);
  EquiWidthVsEquiHeight(scale);
  GmpVsRebuild(scale);
  return 0;
}
