// PERF4: incremental O(Δ) statistics maintenance vs the full-rebuild
// treadmill (DESIGN.md §15). A StatisticsManager serves one Zipf column
// through the incremental-equi-depth backend; the bench applies a churn of
// Δ value-carrying DML ops (RecordInsert/RecordDelete) and times the
// EnsureFresh that follows — an O(Δ) publish from the live reservoir-backed
// state — against a from-scratch build of the same column. Churn rates
// sweep 0.1% / 1% / 10% of n plus two over-budget points so the
// fallback-to-rebuild crossover (the incremental_repair_budget boundary)
// lands inside the sweep, under three drift patterns:
//
//   uniform      inserts and deletes drawn uniformly from the live domain
//   hot_key      every insert hits one value (a skew spike growing in place)
//   domain_shift inserts land past the old maximum (an advancing frontier)
//
// Emits BENCH_incremental_maintenance.json (mirrored to stdout) with the
// host's hardware concurrency; scripts/check_perf_regression.py gates CI
// on the refresh-ns/Δ-row metrics.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/rng.h"
#include "stats/statistics_manager.h"

namespace {

using namespace equihist;
using bench::Dataset;

constexpr char kColumn[] = "col";
// 0.1% / 1% / 10% (the headline rates), then two points straddling the
// default incremental_repair_budget of 0.5 so the sweep records where the
// manager stops repairing and reseeds from the table.
constexpr double kChurnRates[] = {0.001, 0.01, 0.1, 0.3, 0.75};
const char* const kPatterns[] = {"uniform", "hot_key", "domain_shift"};

double TimeMs(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(end - start).count();
}

StatisticsManager::Options ManagerOptions(const bench::Scale& scale) {
  StatisticsManager::Options options;
  options.buckets = scale.k;
  options.default_backend = HistogramBackendId::kIncrementalEquiDepth;
  // Any recorded DML makes the column stale, so every EnsureFresh after a
  // churn burst actually refreshes — the bench measures the refresh, not
  // the 20% rule.
  options.staleness_threshold = 1e-12;
  options.threads = 1;
  options.seed = 99;
  return options;
}

struct Run {
  std::string pattern;
  double churn = 0.0;
  std::uint64_t delta_rows = 0;
  double dml_ms = 0.0;      // applying the Δ RecordInsert/RecordDelete calls
  double refresh_ms = 0.0;  // the EnsureFresh that publishes afterwards
  bool incremental = false; // refresh was O(Δ), not a fallback rebuild
  double refresh_ns_per_delta_row = 0.0;  // (dml + refresh) / Δ
  double speedup_vs_rebuild = 0.0;
};

// One DML op of the pattern: even ops insert, odd ops delete a value that
// (most likely) exists. All draws come from one sequential Rng stream, so
// the op sequence is a pure function of (pattern, churn, seed).
void ApplyChurn(StatisticsManager& manager, const std::string& pattern,
                std::uint64_t delta, std::uint64_t domain, Rng& rng) {
  const Value hot = static_cast<Value>(domain / 2 + 1);
  for (std::uint64_t i = 0; i < delta; ++i) {
    if ((i & 1) == 0) {
      Value v;
      if (pattern == "hot_key") {
        v = hot;
      } else if (pattern == "domain_shift") {
        v = static_cast<Value>(domain + 1 + rng.NextBounded(domain));
      } else {
        v = static_cast<Value>(1 + rng.NextBounded(domain));
      }
      manager.RecordInsert(kColumn, v);
    } else {
      manager.RecordDelete(kColumn,
                           static_cast<Value>(1 + rng.NextBounded(domain)));
    }
  }
}

std::string ToJson(const std::vector<Run>& runs, double rebuild_ms,
                   double rebuild_ns_per_row, double crossover_churn,
                   const bench::Scale& scale, std::uint64_t capacity) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"bench\": \"incremental_maintenance\",\n";
  os << "  \"full_scale\": " << (scale.full ? "true" : "false") << ",\n";
  os << "  \"n\": " << scale.default_n << ",\n";
  os << "  \"buckets\": " << scale.k << ",\n";
  os << "  \"reservoir_capacity\": " << capacity << ",\n";
  os << "  \"host\": {\"hardware_concurrency\": " << bench::HostConcurrency()
     << "},\n";
  os << "  \"full_rebuild\": {\"best_ms\": " << rebuild_ms
     << ", \"ns_per_table_row\": " << rebuild_ns_per_row << "},\n";
  // The smallest churn the manager answered with a fallback rebuild (the
  // repair-budget boundary); -1 when every swept rate stayed incremental.
  os << "  \"fallback_crossover_churn\": " << crossover_churn << ",\n";
  os << "  \"runs\": [\n";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const Run& r = runs[i];
    os << "    {\"pattern\": \"" << r.pattern << "\", \"churn\": " << r.churn
       << ", \"delta_rows\": " << r.delta_rows
       << ", \"dml_ms\": " << r.dml_ms << ", \"refresh_ms\": " << r.refresh_ms
       << ", \"incremental\": " << (r.incremental ? "true" : "false")
       << ", \"refresh_ns_per_delta_row\": " << r.refresh_ns_per_delta_row
       << ", \"speedup_vs_rebuild\": " << r.speedup_vs_rebuild << "}"
       << (i + 1 < runs.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Scale scale = bench::GetScale(argc, argv);
  bench::PrintBanner("PERF4", "Incremental maintenance vs full rebuild",
                     scale);

  const std::uint64_t n = scale.default_n;
  const std::uint64_t domain = scale.DomainFor(n);
  const Dataset dataset =
      bench::MakeZipfDataset(n, /*skew=*/1.0, LayoutKind::kRandom);
  const StatisticsManager::Options options = ManagerOptions(scale);

  // The yardstick: a from-scratch build of the same column through the
  // same backend — exactly what the fallback path (and the treadmill this
  // PR retires) pays per refresh. Best-of-3 to shed scheduler noise.
  double rebuild_ms = -1.0;
  for (int rep = 0; rep < 3; ++rep) {
    StatisticsManager fresh(options);
    const double ms = TimeMs([&]() {
      auto built = fresh.GetOrBuild(kColumn, dataset.table);
      if (!built.ok()) {
        std::cerr << "rebuild failed: " << built.status().ToString() << "\n";
        std::exit(1);
      }
    });
    if (rebuild_ms < 0.0 || ms < rebuild_ms) rebuild_ms = ms;
  }
  const double rebuild_ns_per_row = rebuild_ms * 1e6 / static_cast<double>(n);
  std::cerr << "full rebuild: best_ms=" << rebuild_ms << "\n";

  std::vector<Run> runs;
  double crossover_churn = -1.0;
  for (const char* pattern : kPatterns) {
    for (const double churn : kChurnRates) {
      const auto delta = static_cast<std::uint64_t>(
          std::max(1.0, churn * static_cast<double>(n)));
      // A fresh manager per cell: every refresh is measured against the
      // same warm, just-built state, independent of the sweep order.
      StatisticsManager manager(options);
      auto built = manager.GetOrBuild(kColumn, dataset.table);
      if (!built.ok()) {
        std::cerr << "initial build failed: " << built.status().ToString()
                  << "\n";
        return 1;
      }
      Rng rng(DeriveStreamSeed(7, delta));

      Run run;
      run.pattern = pattern;
      run.churn = churn;
      run.delta_rows = delta;
      run.dml_ms = TimeMs(
          [&]() { ApplyChurn(manager, pattern, delta, domain, rng); });
      const std::uint64_t refreshes_before =
          manager.incremental_refresh_count();
      run.refresh_ms = TimeMs([&]() {
        auto fresh = manager.EnsureFresh(kColumn, dataset.table);
        if (!fresh.ok()) {
          std::cerr << "refresh failed: " << fresh.status().ToString() << "\n";
          std::exit(1);
        }
      });
      run.incremental =
          manager.incremental_refresh_count() == refreshes_before + 1;
      const double total_ms = run.dml_ms + run.refresh_ms;
      run.refresh_ns_per_delta_row =
          total_ms * 1e6 / static_cast<double>(delta);
      run.speedup_vs_rebuild = total_ms > 0.0 ? rebuild_ms / total_ms : 0.0;
      if (!run.incremental &&
          (crossover_churn < 0.0 || churn < crossover_churn)) {
        crossover_churn = churn;
      }
      runs.push_back(run);
      std::cerr << "  " << pattern << " churn=" << churn << " delta=" << delta
                << " dml_ms=" << run.dml_ms
                << " refresh_ms=" << run.refresh_ms
                << (run.incremental ? " [incremental]" : " [full rebuild]")
                << " speedup=" << run.speedup_vs_rebuild << "x\n";
    }
  }

  const std::string json =
      ToJson(runs, rebuild_ms, rebuild_ns_per_row, crossover_churn, scale,
             options.reservoir_capacity);
  std::cout << json;
  bench::WriteBenchJson("BENCH_incremental_maintenance.json", json);

  // The headline claim: at ≤1% churn the refresh beats the rebuild by
  // ≥10x. Enforced at fast/full scale so the bench rots loudly; at smoke
  // scale (n = 20k) the rebuild is too cheap for the ratio to mean
  // anything, so smoke only checks that every ≤1% refresh stayed
  // incremental (the code-path contract).
  bool ok = true;
  for (const Run& run : runs) {
    if (run.churn <= 0.01 &&
        (!run.incremental ||
         (!scale.smoke && run.speedup_vs_rebuild < 10.0))) {
      std::cerr << "ERROR: " << run.pattern << " churn=" << run.churn
                << " expected an incremental refresh >=10x cheaper than a "
                   "rebuild, got "
                << run.speedup_vs_rebuild << "x"
                << (run.incremental ? "" : " (fell back to rebuild)") << "\n";
      ok = false;
    }
  }
  return ok ? 0 : 1;
}
