// THM13: empirical companion to Theorems 1 and 3 — range-query estimation
// error under (a) the perfect histogram, (b) a sample-built histogram with
// bounded max error, and (c) adversarial histograms that look good on the
// average/variance metrics but hide one bad bucket. For each, the observed
// worst-case absolute error over a large range workload is compared with
// the theorems' bounds/floors.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.h"

using namespace equihist;

namespace {

struct Row {
  const char* name;
  double f_avg, f_var, f_max;
  double mean_abs, max_abs;
  double bound;  // theorem bound/floor on worst-case abs error
  const char* bound_kind;
};

void PrintRows(const std::vector<Row>& rows, std::uint64_t n, std::uint64_t k) {
  std::printf("%-24s %7s %7s %7s | %10s %10s | %12s %s\n", "histogram",
              "f_avg", "f_var", "f_max", "mean |err|", "max |err|",
              "theory", "kind");
  for (const Row& row : rows) {
    std::printf("%-24s %7.3f %7.3f %7.3f | %10.1f %10.1f | %12.1f %s\n",
                row.name, row.f_avg, row.f_var, row.f_max, row.mean_abs,
                row.max_abs, row.bound, row.bound_kind);
  }
  std::printf("(2n/k = %.1f)\n\n",
              2.0 * static_cast<double>(n) / static_cast<double>(k));
}

// Moves every even separator to its right neighbour: halves the buckets are
// emptied and their neighbours doubled. Delta_max ~ n/k, Delta_avg ~ n/k
// too here, but the shape shows how a locally bad histogram corrupts
// estimates while staying moderate on aggregate metrics.
Histogram CollapseOneSeparator(const Histogram& perfect) {
  std::vector<Value> separators = perfect.separators();
  const std::size_t mid = separators.size() / 2;
  separators[mid] = separators[mid + 1];
  return Histogram::Create(separators, perfect.counts(),
                           perfect.lower_fence(), perfect.upper_fence())
      .value();
}

}  // namespace

int main() {
  const bench::Scale scale = bench::GetScale();
  bench::PrintBanner("THM13", "Theorems 1 & 3: range-query estimation error",
                     scale);

  const std::uint64_t n = scale.default_n / 2;
  const std::uint64_t k = scale.k / 2;
  // Duplicate-free data isolates the theorems' setting (Sections 2-3).
  auto freq = MakeAllDistinct(n);
  const ValueSet data = ValueSet::FromFrequencies(*freq);

  const auto perfect = BuildPerfectHistogram(data, k);
  const double f_target = 0.1;
  const auto r = DeviationSampleSize(n, k, f_target, 0.01);
  Rng rng(7);
  std::vector<Value> sample =
      SampleRowsWithReplacement(data.sorted_values(), *r, rng);
  std::sort(sample.begin(), sample.end());
  const auto sampled = BuildHistogramFromSample(sample, k, n);
  const Histogram adversarial = CollapseOneSeparator(*perfect);

  RangeWorkloadGenerator gen(&data, 13);
  std::vector<RangeQuery> queries = gen.UniformRanges(2000);
  const auto narrow = gen.FixedSelectivityRanges(2000, 2 * n / k);
  queries.insert(queries.end(), narrow->begin(), narrow->end());
  std::printf("workload: %zu uniform + fixed-selectivity range queries over "
              "all-distinct data (n=%s, k=%llu)\n\n",
              queries.size(), FormatWithThousands(n).c_str(),
              static_cast<unsigned long long>(k));

  std::vector<Row> rows;
  auto add = [&](const char* name, const Histogram& h, double bound,
                 const char* kind) {
    const auto errors = ComputeHistogramErrors(h, data);
    const auto report = EvaluateRangeWorkload(h, queries, data);
    rows.push_back(Row{name, errors->f_avg, errors->f_var, errors->f_max,
                       report->mean_absolute_error,
                       report->max_absolute_error, bound, kind});
  };
  add("perfect", *perfect, PerfectHistogramAbsoluteErrorBound(n, k),
      "upper bound (Thm 1.1 tight)");
  {
    const auto errors = ComputeHistogramErrors(*sampled, data);
    add("sampled (target f=0.1)", *sampled,
        MaxErrorHistogramAbsoluteErrorBound(n, k, errors->f_max),
        "upper bound (Thm 3)");
  }
  {
    const auto errors = ComputeHistogramErrors(adversarial, data);
    add("adversarial collapsed", adversarial,
        AvgErrorHistogramAbsoluteErrorFloor(n, k, errors->f_avg),
        "worst-case floor (Thm 1.2)");
  }
  PrintRows(rows, n, k);

  std::printf("expected shape: observed max |err| <= its Theorem 1.1/3 upper "
              "bound for the perfect\nand sampled histograms; the "
              "adversarial histogram's max |err| blows past 2n/k even\n"
              "though its f_avg is small — the paper's argument for the max "
              "error metric.\n");
  return 0;
}
