// FAM: histogram-family shootout — the paper's "ongoing research goal" of
// extending its sampling analysis to other histogram structures [15, 16],
// studied empirically. Four families at the same bucket budget, built
// (a) exactly from the full data and (b) from the same random sample, are
// scored on range-query workloads and on equality-predicate error.

#include <algorithm>
#include <cstdio>
#include <functional>

#include "bench_common.h"

using namespace equihist;

namespace {

struct FamilyResult {
  double range_mean = 0.0;
  double range_max = 0.0;
  double eq_mean_rel = 0.0;
};

template <typename EstimateFn>
FamilyResult Score(const ValueSet& data, const FrequencyVector& freq,
                   const std::vector<RangeQuery>& queries,
                   const EstimateFn& estimate_range,
                   const std::function<double(Value)>& estimate_eq) {
  FamilyResult result;
  KahanSum range_sum;
  for (const RangeQuery& q : queries) {
    const double actual = static_cast<double>(data.CountInRange(q.lo, q.hi));
    const double err = std::abs(estimate_range(q) - actual);
    range_sum.Add(err);
    result.range_max = std::max(result.range_max, err);
  }
  result.range_mean = range_sum.Value() / static_cast<double>(queries.size());

  KahanSum eq_sum;
  std::size_t eq_count = 0;
  for (const FrequencyEntry& entry : freq.entries()) {
    if (++eq_count > 500) break;  // cap the probe count
    const double actual = static_cast<double>(entry.count);
    eq_sum.Add(std::abs(estimate_eq(entry.value) - actual) / actual);
  }
  result.eq_mean_rel = eq_sum.Value() / static_cast<double>(eq_count);
  return result;
}

void Row(const char* name, const FamilyResult& r) {
  std::printf("%-22s %12.1f %12.1f %14.3f\n", name, r.range_mean, r.range_max,
              r.eq_mean_rel);
}

double HistEq(const Histogram& h, Value v) {
  // Equality estimate from a bucket histogram: the bucket's claimed count
  // spread over its domain width (uniform-within-bucket assumption).
  const std::uint64_t j = h.BucketIndexForValue(v);
  const Value lo = h.BucketLowerBound(j);
  const Value hi = h.BucketUpperBound(j);
  const double width = static_cast<double>(hi > lo ? hi - lo : 1);
  return static_cast<double>(h.counts()[j]) / width;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Scale scale = bench::GetScale(argc, argv);
  bench::PrintBanner("FAM",
                     "histogram families: equi-height vs equi-width vs "
                     "V-optimal vs MaxDiff",
                     scale);

  // V-optimal's DP is quadratic in distinct values: keep d moderate (and
  // tiny in smoke mode, where the point is exercising the code paths).
  const std::uint64_t n = scale.default_n / 4;
  const std::uint64_t d = scale.smoke ? 200 : 2000;
  const std::uint64_t k = scale.smoke ? 16 : (scale.full ? 100 : 50);
  const auto freq = MakeZipf({.n = n, .domain_size = d, .skew = 1.5,
                              .seed = 3});
  const ValueSet data = ValueSet::FromFrequencies(*freq);
  RangeWorkloadGenerator gen(&data, 17);
  const auto queries = gen.UniformRanges(1000);

  std::printf("N=%s, d=%s distinct, k=%llu, Zipf Z=1.5, 1000 range queries "
              "+ 500 equality probes\n\n",
              FormatWithThousands(n).c_str(), FormatWithThousands(d).c_str(),
              static_cast<unsigned long long>(k));

  std::printf("--- built exactly from the full data ---\n");
  std::printf("%-22s %12s %12s %14s\n", "family", "range mean", "range max",
              "eq mean rel");
  {
    const auto equi_height = BuildPerfectHistogram(data, k);
    const auto equi_width = EquiWidthHistogram::Build(data, k);
    const auto voptimal = BuildVOptimalHistogram(*freq, k);
    const auto maxdiff = BuildMaxDiffHistogram(*freq, k);
    const auto compressed = CompressedHistogram::BuildPerfect(data, k);
    Row("compressed (Sec 5)",
        Score(data, *freq, queries,
              [&](const RangeQuery& q) {
                return compressed->EstimateRangeCount(q);
              },
              [&](Value v) {
                for (const auto& s : compressed->singletons()) {
                  if (s.value == v) return static_cast<double>(s.count);
                }
                const Histogram* equi = compressed->equi_height_part();
                return equi != nullptr ? HistEq(*equi, v) : 0.0;
              }));
    Row("equi-height",
        Score(data, *freq, queries,
              [&](const RangeQuery& q) {
                return EstimateRangeCount(*equi_height, q);
              },
              [&](Value v) { return HistEq(*equi_height, v); }));
    Row("equi-width",
        Score(data, *freq, queries,
              [&](const RangeQuery& q) {
                return equi_width->EstimateRangeCount(q);
              },
              [&](Value v) {
                const std::uint64_t j = equi_width->BucketIndexForValue(v);
                const double width =
                    static_cast<double>(equi_width->BucketUpperBound(j) -
                                        equi_width->BucketLowerBound(j));
                return static_cast<double>(equi_width->counts()[j]) /
                       std::max(width, 1.0);
              }));
    Row("v-optimal",
        Score(data, *freq, queries,
              [&](const RangeQuery& q) {
                return EstimateRangeCount(*voptimal, q);
              },
              [&](Value v) { return HistEq(*voptimal, v); }));
    Row("maxdiff",
        Score(data, *freq, queries,
              [&](const RangeQuery& q) {
                return EstimateRangeCount(*maxdiff, q);
              },
              [&](Value v) { return HistEq(*maxdiff, v); }));
  }

  std::printf("\n--- built from the same 5%% random sample ---\n");
  std::printf("%-22s %12s %12s %14s\n", "family", "range mean", "range max",
              "eq mean rel");
  {
    Rng rng(23);
    auto sample = SampleRowsWithoutReplacement(data.sorted_values(),
                                               n / 20, rng);
    std::sort(sample->begin(), sample->end());
    const auto equi_height = BuildHistogramFromSample(*sample, k, n);
    const auto equi_width =
        EquiWidthHistogram::BuildFromSample(*sample, k, n);
    const auto voptimal = BuildVOptimalFromSample(*sample, k, n);
    const auto maxdiff = BuildMaxDiffFromSample(*sample, k, n);
    const auto compressed = CompressedHistogram::BuildFromSample(*sample, k, n);
    Row("compressed (Sec 5)",
        Score(data, *freq, queries,
              [&](const RangeQuery& q) {
                return compressed->EstimateRangeCount(q);
              },
              [&](Value v) {
                for (const auto& s : compressed->singletons()) {
                  if (s.value == v) return static_cast<double>(s.count);
                }
                const Histogram* equi = compressed->equi_height_part();
                return equi != nullptr ? HistEq(*equi, v) : 0.0;
              }));
    Row("equi-height",
        Score(data, *freq, queries,
              [&](const RangeQuery& q) {
                return EstimateRangeCount(*equi_height, q);
              },
              [&](Value v) { return HistEq(*equi_height, v); }));
    Row("equi-width",
        Score(data, *freq, queries,
              [&](const RangeQuery& q) {
                return equi_width->EstimateRangeCount(q);
              },
              [&](Value v) {
                const std::uint64_t j = equi_width->BucketIndexForValue(v);
                const double width =
                    static_cast<double>(equi_width->BucketUpperBound(j) -
                                        equi_width->BucketLowerBound(j));
                return static_cast<double>(equi_width->counts()[j]) /
                       std::max(width, 1.0);
              }));
    Row("v-optimal",
        Score(data, *freq, queries,
              [&](const RangeQuery& q) {
                return EstimateRangeCount(*voptimal, q);
              },
              [&](Value v) { return HistEq(*voptimal, v); }));
    Row("maxdiff",
        Score(data, *freq, queries,
              [&](const RangeQuery& q) {
                return EstimateRangeCount(*maxdiff, q);
              },
              [&](Value v) { return HistEq(*maxdiff, v); }));
  }

  std::printf(
      "\nreading: on heavily duplicated data, plain bucket families "
      "(equi-height, equi-width)\nsuffer from heavy values smeared across a "
      "bucket's value range — exactly the Section 5\nproblem. The "
      "compressed histogram (singling out values heavier than n/k) and "
      "the\nfrequency-grouping families (V-optimal, MaxDiff) avoid it; "
      "sample-built versions\npreserve each family's character, the "
      "empirical ground for extending the paper's\nbounds beyond "
      "equi-height.\n");
  return 0;
}
