// FLEET1: fleet serving under mixed traffic (DESIGN.md §16). Worker
// threads fire multi-column estimate batches at a StatisticsFleet while a
// DML thread records modifications and schedules async rebuilds through
// the BuildScheduler — the steady state of a server with auto-statistics
// on. Sweeps the shard count (1 vs N) and reports per-shard-count:
//
//   qps               client batches served per second (all workers)
//   p99_us            99th-percentile client batch latency
//   coalescing_ratio  fraction of client batches that rode a group-commit
//                     wave with at least one other batch
//
// Two guards make the bench fail loudly instead of rotting:
//   - every fleet estimate is cross-checked bitwise against a single
//     StatisticsManager with the same seed (the fleet determinism
//     contract) before any timing starts;
//   - the scalar serving path through a fleet must stay within a generous
//     factor of the raw manager path (the metrics plane and shard routing
//     must not tax EstimateRange) — enforced in every mode including
//     --smoke, which is how CI runs it.
//
// A transport section (DESIGN.md §17) additionally times one estimate
// frame's round trip through the in-process Transport and through a real
// unix-domain SocketTransport against a SocketTransportServer — the
// envelope + framing + syscall cost per exchange. Both paths are
// cross-checked bitwise against ServeFrame before timing, and the medians
// are gated by scripts/check_perf_regression.py.
//
// Emits BENCH_fleet_serving.json (mirrored to stdout).

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "stats/fleet_wire.h"
#include "stats/statistics_fleet.h"
#include "stats/statistics_manager.h"
#include "stats/transport.h"

namespace {

using namespace equihist;

constexpr std::uint64_t kShardSweep[] = {1, 2, 4};
constexpr int kWorkers = 4;
constexpr std::size_t kBatchSize = 16;

double ElapsedNs(const std::chrono::steady_clock::time_point start) {
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::nano>(end - start).count();
}

StatisticsShard::Options ShardOptions(const bench::Scale& scale) {
  StatisticsShard::Options options;
  options.buckets = scale.k;
  options.f = 0.2;
  options.seed = 1998;
  options.threads = 1;
  return options;
}

std::vector<std::string> Columns(std::size_t n) {
  std::vector<std::string> columns;
  columns.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    columns.push_back("t.c" + std::to_string(i));
  }
  return columns;
}

// One worker's rotating multi-column batch (distinct rotations per worker
// so coalesced waves mix genuinely different requests).
std::vector<BatchEstimateRequest> WorkerBatch(
    const std::vector<std::string>& columns, std::uint64_t domain,
    int worker) {
  std::vector<BatchEstimateRequest> requests;
  requests.reserve(kBatchSize);
  for (std::size_t i = 0; i < kBatchSize; ++i) {
    const std::string& column =
        columns[(i + static_cast<std::size_t>(worker)) % columns.size()];
    const auto lo = static_cast<Value>((i * domain) / (kBatchSize * 2));
    requests.push_back(
        {column, {lo, lo + static_cast<Value>(domain / 4)}});
  }
  return requests;
}

struct SweepRow {
  std::uint64_t shards = 0;
  double elapsed_ms = 0.0;
  std::uint64_t batches = 0;
  double qps = 0.0;
  double p99_us = 0.0;
  double coalescing_ratio = 0.0;
  std::uint64_t coalesced_batches = 0;
  std::uint64_t scheduled_builds = 0;
};

struct ScalarGuard {
  std::uint64_t queries = 0;
  double manager_ns_per_query = 0.0;
  // A 1-shard fleet: identical serving path + metrics plane, no routing
  // hash. This isolates the metrics cost — the guarded number.
  double fleet_1shard_ns_per_query = 0.0;
  double overhead_ratio = 0.0;
  // A 4-shard fleet: adds the FNV-1a route per call. Reported (and
  // loosely bounded) so routing-cost regressions still surface.
  double fleet_4shard_ns_per_query = 0.0;
  double routed_ratio = 0.0;
};

// Round-trip latency of one estimate frame through a Transport
// (DESIGN.md §17): envelope encode + serve + envelope decode, plus the
// syscalls on the socket path. Gated by check_perf_regression.py.
struct TransportStats {
  std::uint64_t round_trips = 0;
  double in_process_median_us = 0.0;
  double in_process_p99_us = 0.0;
  double unix_socket_median_us = 0.0;
  double unix_socket_p99_us = 0.0;
  // socket median / in-process median: what the wire itself costs.
  double socket_overhead_ratio = 0.0;
};

// Times `rounds` fault-free round trips, checking every response bitwise
// against the direct ServeFrame bytes. Returns {median_us, p99_us} or
// {-1, -1} on any mismatch or transport error.
std::pair<double, double> TimeRoundTrips(
    transport::Transport& link, std::span<const std::uint8_t> frame,
    const std::vector<std::uint8_t>& expected, int rounds) {
  std::vector<double> lat_us;
  lat_us.reserve(static_cast<std::size_t>(rounds));
  for (int r = 0; r < rounds; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    const auto response = link.RoundTrip(frame, 1'000'000);
    const double us = ElapsedNs(t0) / 1e3;
    if (!response.ok() || *response != expected) return {-1.0, -1.0};
    if (r >= rounds / 10) lat_us.push_back(us);  // first 10% is warmup
  }
  std::sort(lat_us.begin(), lat_us.end());
  const double median = lat_us[lat_us.size() / 2];
  const double p99 =
      lat_us[std::min(lat_us.size() - 1,
                      static_cast<std::size_t>(
                          0.99 * static_cast<double>(lat_us.size())))];
  return {median, p99};
}

std::string ToJson(const std::vector<SweepRow>& rows,
                   const ScalarGuard& guard, const TransportStats& transit,
                   std::uint64_t n, std::size_t columns,
                   const bench::Scale& scale) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"experiment\": \"FLEET1\",\n";
  os << "  \"bench\": \"fleet_serving\",\n";
  os << "  \"title\": \"fleet serving: mixed traffic, 1 vs N shards\",\n";
  os << "  \"n\": " << n << ",\n";
  os << "  \"columns\": " << columns << ",\n";
  os << "  \"batch_size\": " << kBatchSize << ",\n";
  os << "  \"workers\": " << kWorkers << ",\n";
  os << "  \"scale\": \""
     << (scale.smoke ? "smoke" : (scale.full ? "full" : "fast")) << "\",\n";
  os << "  \"host\": {\"hardware_concurrency\": " << bench::HostConcurrency()
     << "},\n";
  os << "  \"shard_sweep\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const SweepRow& row = rows[i];
    os << "    {\"shards\": " << row.shards << ", \"qps\": " << row.qps
       << ", \"p99_us\": " << row.p99_us
       << ", \"coalescing_ratio\": " << row.coalescing_ratio
       << ", \"coalesced_batches\": " << row.coalesced_batches
       << ", \"batches\": " << row.batches
       << ", \"scheduled_builds\": " << row.scheduled_builds << "}"
       << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  os << "  ],\n";
  os << "  \"scalar_serving\": {\"queries\": " << guard.queries
     << ", \"manager_ns_per_query\": " << guard.manager_ns_per_query
     << ", \"fleet_1shard_ns_per_query\": " << guard.fleet_1shard_ns_per_query
     << ", \"overhead_ratio\": " << guard.overhead_ratio
     << ", \"fleet_4shard_ns_per_query\": " << guard.fleet_4shard_ns_per_query
     << ", \"routed_ratio\": " << guard.routed_ratio << "},\n";
  os << "  \"transport\": {\"round_trips\": " << transit.round_trips
     << ", \"in_process_median_us\": " << transit.in_process_median_us
     << ", \"in_process_p99_us\": " << transit.in_process_p99_us
     << ", \"unix_socket_median_us\": " << transit.unix_socket_median_us
     << ", \"unix_socket_p99_us\": " << transit.unix_socket_p99_us
     << ", \"socket_overhead_ratio\": " << transit.socket_overhead_ratio
     << "}\n";
  os << "}\n";
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Scale scale = bench::GetScale(argc, argv);
  bench::PrintBanner("FLEET1", "fleet serving: mixed traffic, 1 vs N shards",
                     scale);
  const std::uint64_t n = scale.smoke ? 20000 : 200000;
  const int rounds = scale.smoke ? 20 : 200;
  const auto dataset =
      bench::MakeZipfDataset(n, 1.2, LayoutKind::kRandom, 64, 1998);
  const std::uint64_t domain = scale.DomainFor(n);
  const auto columns = Columns(8);

  // Ground truth: one manager, same options/seed. The fleet must serve
  // bitwise these answers at every shard count.
  StatisticsManager manager(ShardOptions(scale));
  if (!manager.BuildAll(columns, dataset.table).ok()) {
    std::cerr << "manager BuildAll failed\n";
    return 1;
  }
  std::vector<BatchEstimateResult> expected(kWorkers);
  for (int w = 0; w < kWorkers; ++w) {
    const auto requests = WorkerBatch(columns, domain, w);
    if (!manager.EstimateBatch(dataset.table, requests, &expected[w]).ok()) {
      std::cerr << "manager EstimateBatch failed\n";
      return 1;
    }
  }

  std::vector<SweepRow> rows;
  for (const std::uint64_t shards : kShardSweep) {
    StatisticsFleet fleet({.shards = shards,
                           .shard = ShardOptions(scale),
                           .scheduler = {.max_inflight = 1, .threads = 2}});
    if (!fleet.BuildAll(columns, dataset.table).ok()) {
      std::cerr << "fleet BuildAll failed (shards=" << shards << ")\n";
      return 1;
    }
    // Bitwise cross-check before timing.
    for (int w = 0; w < kWorkers; ++w) {
      BatchEstimateResult got;
      const auto requests = WorkerBatch(columns, domain, w);
      if (!fleet.EstimateBatch(dataset.table, requests, &got).ok() ||
          got.estimates != expected[w].estimates) {
        std::cerr << "FLEET MISMATCH vs manager at shards=" << shards << "\n";
        return 1;
      }
    }

    std::atomic<bool> failed{false};
    std::atomic<std::uint64_t> batches{0};
    std::vector<std::vector<double>> latencies_us(kWorkers);
    const auto start = std::chrono::steady_clock::now();
    std::vector<std::thread> workers;
    workers.reserve(kWorkers);
    for (int w = 0; w < kWorkers; ++w) {
      workers.emplace_back([&, w]() {
        const auto requests = WorkerBatch(columns, domain, w);
        latencies_us[w].reserve(static_cast<std::size_t>(rounds));
        for (int r = 0; r < rounds && !failed.load(); ++r) {
          BatchEstimateResult result;
          const auto t0 = std::chrono::steady_clock::now();
          if (!fleet.EstimateBatch(dataset.table, requests, &result).ok() ||
              result.estimates != expected[w].estimates) {
            failed.store(true);
            return;
          }
          latencies_us[w].push_back(ElapsedNs(t0) / 1e3);
          batches.fetch_add(1);
        }
      });
    }
    // The DML/build-pressure thread: modifications trickle in and async
    // rebuilds get scheduled — admission-controlled, so serving stays up.
    std::uint64_t scheduled = 0;
    std::thread churn([&]() {
      for (int r = 0; r < rounds / 2; ++r) {
        const std::string& column = columns[r % columns.size()];
        fleet.RecordModifications(column, n / 100);
        fleet.ScheduleBuild("t", column, dataset.table);
        ++scheduled;
      }
    });
    for (auto& worker : workers) worker.join();
    churn.join();
    const double elapsed_ms = ElapsedNs(start) / 1e6;
    fleet.DrainBuilds();
    if (failed.load()) {
      std::cerr << "FLEET MISMATCH during mixed traffic at shards=" << shards
                << "\n";
      return 1;
    }

    std::vector<double> all;
    for (const auto& lane : latencies_us) {
      all.insert(all.end(), lane.begin(), lane.end());
    }
    std::sort(all.begin(), all.end());
    SweepRow row;
    row.shards = shards;
    row.elapsed_ms = elapsed_ms;
    row.batches = batches.load();
    row.qps = elapsed_ms > 0.0
                  ? static_cast<double>(row.batches) * 1e3 / elapsed_ms
                  : 0.0;
    row.p99_us =
        all.empty() ? 0.0
                    : all[std::min(all.size() - 1,
                                   static_cast<std::size_t>(
                                       0.99 * static_cast<double>(all.size())))];
    const std::uint64_t client_batches = fleet.fleet_metrics().counter(
        metrics::Counter::kEstimateBatches);
    const std::uint64_t coalesced_requests = fleet.fleet_metrics().counter(
        metrics::Counter::kCoalescedRequests);
    row.coalesced_batches =
        fleet.fleet_metrics().counter(metrics::Counter::kCoalescedBatches);
    row.coalescing_ratio =
        client_batches > 0
            ? static_cast<double>(coalesced_requests) /
                  static_cast<double>(client_batches)
            : 0.0;
    row.scheduled_builds = scheduled;
    rows.push_back(row);
    std::cerr << "shards=" << shards << " qps=" << row.qps
              << " p99_us=" << row.p99_us
              << " coalescing_ratio=" << row.coalescing_ratio
              << " coalesced_batches=" << row.coalesced_batches << "\n";
  }

  // Scalar serving guard: fleet routing + metrics must not tax
  // EstimateRange. Best-of-3 to shed scheduler noise.
  ScalarGuard guard;
  {
    StatisticsFleet fleet1({.shards = 1, .shard = ShardOptions(scale)});
    StatisticsFleet fleet4({.shards = 4, .shard = ShardOptions(scale)});
    if (!fleet1.BuildAll(columns, dataset.table).ok()) return 1;
    if (!fleet4.BuildAll(columns, dataset.table).ok()) return 1;
    const std::uint64_t queries = scale.smoke ? 20000 : 200000;
    guard.queries = queries;
    const RangeQuery query{0, static_cast<Value>(domain / 2)};
    double manager_best = 1e300;
    double fleet1_best = 1e300;
    double fleet4_best = 1e300;
    // Each lane times in a FRESH thread: the lock-free serving cache is
    // per-thread and scanned linearly, so a shared thread would hand the
    // first lane a short scan and every later lane a longer one — the
    // comparison would measure cache pollution, not the serving path.
    const auto time_lane = [&](auto&& estimate) {
      double ns = 0.0;
      double sum = 0.0;
      std::thread lane([&]() {
        for (const std::string& c : columns) {  // warm the thread's cache
          (void)estimate(c);
        }
        const auto t0 = std::chrono::steady_clock::now();
        for (std::uint64_t q = 0; q < queries; ++q) {
          sum += estimate(columns[q % columns.size()]);
        }
        ns = ElapsedNs(t0) / static_cast<double>(queries);
      });
      lane.join();
      return std::pair<double, double>(ns, sum);
    };
    for (int rep = 0; rep < 3; ++rep) {
      const auto [manager_ns, sum_manager] =
          time_lane([&](const std::string& c) {
            return *manager.EstimateRange(c, dataset.table, query);
          });
      const auto [fleet1_ns, sum_fleet1] =
          time_lane([&](const std::string& c) {
            return *fleet1.EstimateRange(c, dataset.table, query);
          });
      const auto [fleet4_ns, sum_fleet4] =
          time_lane([&](const std::string& c) {
            return *fleet4.EstimateRange(c, dataset.table, query);
          });
      manager_best = std::min(manager_best, manager_ns);
      fleet1_best = std::min(fleet1_best, fleet1_ns);
      fleet4_best = std::min(fleet4_best, fleet4_ns);
      if (sum_fleet1 != sum_manager || sum_fleet4 != sum_manager) {
        std::cerr << "FLEET MISMATCH on scalar serving path\n";
        return 1;
      }
    }
    guard.manager_ns_per_query = manager_best;
    guard.fleet_1shard_ns_per_query = fleet1_best;
    guard.overhead_ratio =
        manager_best > 0.0 ? fleet1_best / manager_best : 0.0;
    guard.fleet_4shard_ns_per_query = fleet4_best;
    guard.routed_ratio = manager_best > 0.0 ? fleet4_best / manager_best : 0.0;
    std::cerr << "scalar serving: manager=" << manager_best
              << " ns/q, fleet(1 shard)=" << fleet1_best << " ns/q (ratio "
              << guard.overhead_ratio << "), fleet(4 shards)=" << fleet4_best
              << " ns/q (ratio " << guard.routed_ratio << ")\n";
  }

  // Transport round trips: the same estimate frame through the in-process
  // Transport and through a real unix-domain socket against a running
  // SocketTransportServer. Single-frame answers are bitwise-checked
  // against ServeFrame on every round — a framing regression fails the
  // bench, never skews it.
  TransportStats transit;
  {
    StatisticsFleet fleet({.shards = 2, .shard = ShardOptions(scale)});
    if (!fleet.BuildAll(columns, dataset.table).ok()) {
      std::cerr << "transport fleet BuildAll failed\n";
      return 1;
    }
    const std::vector<std::uint8_t> frame = fleetwire::Encode(
        fleetwire::EstimateBatchRequestFrame{WorkerBatch(columns, domain, 0)});
    const auto expected_bytes = fleet.ServeFrame(frame, dataset.table);
    if (!expected_bytes.ok()) {
      std::cerr << "ServeFrame failed: " << expected_bytes.status().ToString()
                << "\n";
      return 1;
    }
    const int rt_rounds = scale.smoke ? 300 : 3000;
    transit.round_trips = static_cast<std::uint64_t>(rt_rounds);

    transport::InProcessTransport in_process(&fleet, &dataset.table);
    std::tie(transit.in_process_median_us, transit.in_process_p99_us) =
        TimeRoundTrips(in_process, frame, *expected_bytes, rt_rounds);

    transport::SocketTransportServer server(
        &fleet, &dataset.table,
        {.endpoint = {.kind = transport::Endpoint::Kind::kUnix,
                      .path = "/tmp/equihist_bench_" +
                              std::to_string(getpid()) + ".sock"}});
    if (!server.Start().ok()) {
      std::cerr << "transport server failed to start\n";
      return 1;
    }
    auto socket = transport::SocketTransport::Connect(server.endpoint(),
                                                      1'000'000);
    if (!socket.ok()) {
      std::cerr << "transport connect failed: "
                << socket.status().ToString() << "\n";
      return 1;
    }
    std::tie(transit.unix_socket_median_us, transit.unix_socket_p99_us) =
        TimeRoundTrips(**socket, frame, *expected_bytes, rt_rounds);
    server.Stop();
    if (transit.in_process_median_us < 0.0 ||
        transit.unix_socket_median_us < 0.0) {
      std::cerr << "TRANSPORT MISMATCH vs ServeFrame bytes\n";
      return 1;
    }
    transit.socket_overhead_ratio =
        transit.in_process_median_us > 0.0
            ? transit.unix_socket_median_us / transit.in_process_median_us
            : 0.0;
    std::cerr << "transport round trip: in-process median="
              << transit.in_process_median_us
              << " us (p99=" << transit.in_process_p99_us
              << "), unix socket median=" << transit.unix_socket_median_us
              << " us (p99=" << transit.unix_socket_p99_us << ", "
              << transit.socket_overhead_ratio << "x)\n";
  }

  const std::string json =
      ToJson(rows, guard, transit, n, columns.size(), scale);
  std::cout << json;
  bench::WriteBenchJson("BENCH_fleet_serving.json", json);

  // Guards. The 1-shard fleet runs the byte-identical serving path plus
  // the metrics plane — "no measurable cost" means this ratio stays
  // within noise (1.5x is generous for a busy 1-core host). The 4-shard
  // ratio additionally pays the FNV-1a route (a string hash + modulo per
  // call, ~tens of ns against a ~25 ns path), bounded loosely at 4x so a
  // real routing regression still fails the bench.
  if (guard.overhead_ratio > 1.5) {
    std::cerr << "ERROR: fleet(1 shard) scalar serving is "
              << guard.overhead_ratio << "x the manager path (bound: 1.5x) — "
                 "the metrics plane is taxing the serving path\n";
    return 1;
  }
  if (guard.routed_ratio > 4.0) {
    std::cerr << "ERROR: fleet(4 shards) scalar serving is "
              << guard.routed_ratio << "x the manager path (bound: 4x)\n";
    return 1;
  }
  return 0;
}
