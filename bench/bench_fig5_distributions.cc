// Figure 5: max error vs sampling rate for three Zipf skews (Z = 0, 2, 4)
// over a random layout. The paper's observation: the error-vs-rate curves
// nearly coincide — convergence is independent of the data distribution,
// as Theorem 4 predicts.

#include <cstdio>
#include <vector>

#include "bench_common.h"

using namespace equihist;

int main() {
  const bench::Scale scale = bench::GetScale();
  bench::PrintBanner("FIG5",
                     "max error vs sampling rate for Z in {0, 2, 4} "
                     "(random layout)",
                     scale);

  const std::uint64_t n = scale.default_n;
  const std::vector<double> rates = {0.002, 0.005, 0.01, 0.02,
                                     0.05, 0.1, 0.2};
  const std::vector<double> skews = {0.0, 2.0, 4.0};
  const int trials = scale.full ? 3 : 5;

  std::printf("N=%s, k=%llu, error = fractional max error f' "
              "(Definition 4 vs ground truth)\n\n",
              FormatWithThousands(n).c_str(),
              static_cast<unsigned long long>(scale.k));
  std::printf("%14s | %10s %10s %10s\n", "sampling rate", "Z=0", "Z=2",
              "Z=4");

  std::vector<bench::Dataset> datasets;
  datasets.reserve(skews.size());
  for (double z : skews) {
    datasets.push_back(bench::MakeZipfDataset(n, z, LayoutKind::kRandom));
  }

  for (double rate : rates) {
    std::printf("%13.1f%% |", rate * 100.0);
    for (const bench::Dataset& dataset : datasets) {
      const auto blocks = static_cast<std::uint64_t>(
          rate * static_cast<double>(dataset.table.page_count()));
      const double error = bench::MeasuredErrorAtBlocks(
          dataset, std::max<std::uint64_t>(blocks, 1), scale.k, trials, 99);
      std::printf(" %10.4f", error);
    }
    std::printf("\n");
  }

  std::printf("\nexpected shape (paper): the three columns track each other "
              "closely at every rate —\nthe convergence point does not "
              "depend on the skew (Figure 5).\n");
  return 0;
}
