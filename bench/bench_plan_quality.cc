// PLAN: the paper's motivating application, end to end — "the ability of
// an optimizer to make a good decision is critically influenced by the
// availability of statistical information" (Section 1). The same range
// workload is planned with statistics of varying quality, every chosen
// plan is executed, and the measured I/O is compared against the oracle
// (always-cheapest) plan.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.h"

using namespace equihist;

namespace {

struct Verdict {
  int wrong_plans = 0;
  double total_cost = 0.0;   // weighted page cost actually paid
  double oracle_cost = 0.0;  // weighted cost of the cheapest plan
};

Verdict RunWorkload(const ColumnStatistics& stats, const Table& table,
                    const OrderedIndex& index,
                    const std::vector<RangeQuery>& queries) {
  const CostModel cost_model;
  Verdict verdict;
  for (const RangeQuery& q : queries) {
    const auto choice = ChooseAccessPath(stats, q, table.page_count(),
                                         table.tuples_per_page());
    const auto via_index =
        ExecutePlan(table, index, q, AccessPath::kIndexRangeScan);
    const auto via_scan = ExecutePlan(table, index, q, AccessPath::kFullScan);
    const double index_cost = static_cast<double>(via_index.io.pages_read) *
                              cost_model.random_page_cost;
    const double scan_cost = static_cast<double>(via_scan.io.pages_read) *
                             cost_model.sequential_page_cost;
    const double chosen_cost =
        choice.path == AccessPath::kIndexRangeScan ? index_cost : scan_cost;
    const double best_cost = std::min(index_cost, scan_cost);
    verdict.total_cost += chosen_cost;
    verdict.oracle_cost += best_cost;
    if (chosen_cost > best_cost * 1.01) ++verdict.wrong_plans;
  }
  return verdict;
}

void Row(const char* name, const Verdict& v, std::size_t queries) {
  std::printf("%-30s %10d/%zu %16.0f %14.1f%%\n", name, v.wrong_plans,
              queries, v.total_cost,
              100.0 * (v.total_cost / v.oracle_cost - 1.0));
}

}  // namespace

int main() {
  const bench::Scale scale = bench::GetScale();
  bench::PrintBanner("PLAN",
                     "plan quality vs statistics quality (access-path "
                     "selection)",
                     scale);

  const std::uint64_t n = scale.default_n / 2;
  const auto freq =
      MakeZipf({.n = n, .domain_size = n / 25, .skew = 1.5, .seed = 21});
  const ValueSet truth = ValueSet::FromFrequencies(*freq);
  Table table = Table::Create(*freq, PageConfig{8192, 64},
                              {.kind = LayoutKind::kRandom, .seed = 21})
                    .value();
  const auto index = OrderedIndex::Build(table);

  // Mixed-width workload over the value domain (domain-based, so windows
  // that land on a heavy value have output sizes far from their width —
  // exactly where statistics matter).
  Rng qrng(33);
  std::vector<RangeQuery> queries;
  const Value domain_lo = truth.min() - 1;
  const Value domain_hi = truth.max();
  for (double width_fraction :
       {0.0005, 0.002, 0.01, 0.05, 0.1, 0.25, 0.5}) {
    const auto width = std::max<Value>(
        1, static_cast<Value>(width_fraction *
                              static_cast<double>(domain_hi - domain_lo)));
    for (int i = 0; i < 30; ++i) {
      const Value lo =
          domain_lo + static_cast<Value>(qrng.NextBounded(
                          static_cast<std::uint64_t>(domain_hi - domain_lo)));
      queries.push_back(RangeQuery{lo, std::min<Value>(lo + width, domain_hi)});
    }
  }
  // Plus hot-value probes: narrow windows around the most frequent values
  // (real workloads correlate with hot data). These are the traps where a
  // width-based guess picks the index and then fetches half the table.
  {
    std::vector<FrequencyEntry> by_count = freq->entries();
    std::sort(by_count.begin(), by_count.end(),
              [](const FrequencyEntry& a, const FrequencyEntry& b) {
                return a.count > b.count;
              });
    const Value narrow = std::max<Value>(
        1, (domain_hi - domain_lo) / 1000);
    for (std::size_t i = 0; i < 20 && i < by_count.size(); ++i) {
      const Value v = by_count[i].value;
      queries.push_back(RangeQuery{v - 1, v});           // exactly the value
      queries.push_back(RangeQuery{v - narrow, v});      // small window to it
      queries.push_back(RangeQuery{v - 1, v + narrow});  // window past it
    }
  }
  std::printf("N=%s, Zipf Z=1.5, %zu queries: widths 0.05%%..50%% of the "
              "domain plus hot-value probes,\nrandom_page_cost=4\n\n",
              FormatWithThousands(n).c_str(), queries.size());

  // Statistics variants, best to worst.
  const auto exact = BuildStatisticsFullScan(table, scale.k);
  CvbOptions cvb;
  cvb.k = scale.k;
  cvb.f = 0.1;
  const auto sampled = BuildStatisticsSampled(table, cvb);
  CvbOptions tiny;
  tiny.k = scale.k;
  tiny.f = 0.1;
  tiny.initial_blocks_override = 2;  // ~256 tuples total
  tiny.schedule.kind = ScheduleKind::kLinear;
  tiny.max_iterations = 1;
  const auto undersampled = BuildStatisticsSampled(table, tiny);

  // "Stale": statistics built for a column whose hot values moved — the
  // same marginal distribution with a different value placement.
  const auto stale_freq =
      MakeZipf({.n = n, .domain_size = n / 25, .skew = 1.5, .seed = 99});
  Table stale_table = Table::Create(*stale_freq, PageConfig{8192, 64},
                                    {.kind = LayoutKind::kRandom, .seed = 99})
                          .value();
  const auto stale = BuildStatisticsFullScan(stale_table, scale.k);

  // "None": a single-bucket histogram — the optimizer's blind guess.
  ColumnStatistics blind;
  blind.SetEquiHeight(
      Histogram::Create({}, {n}, truth.min() - 1, truth.max()).value());
  blind.row_count = n;
  blind.density = 0.0;
  blind.distinct_estimate = static_cast<double>(n);

  std::printf("%-30s %12s %16s %15s\n", "statistics", "wrong plans",
              "total cost", "vs oracle");
  Row("exact (full scan + sort)", RunWorkload(*exact, table, *index, queries),
      queries.size());
  Row("sampled (CVB, f=0.1)", RunWorkload(*sampled, table, *index, queries),
      queries.size());
  Row("undersampled (1 batch)",
      RunWorkload(*undersampled, table, *index, queries), queries.size());
  Row("stale (hot values moved)", RunWorkload(*stale, table, *index, queries),
      queries.size());
  Row("none (single bucket)", RunWorkload(blind, table, *index, queries),
      queries.size());

  std::printf(
      "\nexpected shape: statistics that reflect the data (exact, "
      "CVB-sampled, even a coarse\nsample) keep the I/O overhead versus the "
      "oracle to the unavoidable near-crossover\nband, where both plans "
      "cost about the same; statistics that do NOT reflect the data\n"
      "(stale hot values, no histogram) roughly double the overhead by "
      "sending hot-value\nqueries down the index — the paper's opening "
      "argument, measured. That a small\nsample already plans as well as a "
      "full scan is exactly the economics the paper's\nbounds promise.\n");
  return 0;
}
