// Figure 8: sampling requirement vs record size (max error <= 0.1, Z=2,
// N fixed at one million — the paper's setting for this figure). Larger
// records mean fewer tuples per 8KB page, so hitting the same tuple budget
// requires reading proportionally more blocks: the required amount of
// sampling (in blocks) grows linearly with the record size.

#include <cstdio>
#include <vector>

#include "bench_common.h"

using namespace equihist;

int main() {
  const bench::Scale scale = bench::GetScale();
  bench::PrintBanner("FIG8",
                     "sampling vs record size (max error <= 0.1, Z=2, N=1M)",
                     scale);

  const std::uint64_t n = 1000000;  // the paper fixes N = 1M here
  const double f = 0.1;
  const int trials = scale.full ? 3 : 5;
  std::printf("N=%s, k=%llu, f=%.1f, 8KB pages, random layout\n\n",
              FormatWithThousands(n).c_str(),
              static_cast<unsigned long long>(scale.k), f);
  std::printf("%12s %14s %14s %16s %16s %14s\n", "record size",
              "tuples/page", "total pages", "blocks needed",
              "tuples sampled", "page fraction");

  double first_blocks = 0.0;
  std::vector<double> block_counts;
  const std::vector<std::uint32_t> record_sizes = {16, 32, 64, 128};
  for (std::uint32_t record_size : record_sizes) {
    bench::Dataset dataset =
        bench::MakeZipfDataset(n, 2.0, LayoutKind::kRandom, record_size);
    const std::uint64_t blocks =
        bench::BlocksForTargetError(dataset, f, scale.k, trials, 31);
    const std::uint64_t tuples = blocks * dataset.table.tuples_per_page();
    std::printf("%10uB %14u %14s %16s %16s %13.2f%%\n", record_size,
                dataset.table.tuples_per_page(),
                FormatWithThousands(dataset.table.page_count()).c_str(),
                FormatWithThousands(blocks).c_str(),
                FormatWithThousands(tuples).c_str(),
                100.0 * static_cast<double>(blocks) /
                    static_cast<double>(dataset.table.page_count()));
    if (first_blocks == 0.0) first_blocks = static_cast<double>(blocks);
    block_counts.push_back(static_cast<double>(blocks));
  }

  std::printf("\nblocks needed relative to the 16B row:");
  for (std::size_t i = 0; i < block_counts.size(); ++i) {
    std::printf("  %uB: %.1fx", record_sizes[i],
                block_counts[i] / first_blocks);
  }
  std::printf("\n\nexpected shape (paper): the blocks-needed column grows "
              "~linearly with the record\nsize (1x, 2x, 4x, 8x), since the "
              "tuple budget for a given error is unchanged but\neach block "
              "carries proportionally fewer tuples (Figure 8).\n");
  return 0;
}
