// Figure 6: required sampling rate vs number of histogram bins
// (max error <= 0.2, Z=2). Expected shape: linear in k — Corollary 1's
// r = 4 k ln(2n/gamma) / f^2 scales with k, and so does the measured
// requirement.

#include <cstdio>
#include <vector>

#include "bench_common.h"

using namespace equihist;

int main() {
  const bench::Scale scale = bench::GetScale();
  bench::PrintBanner("FIG6",
                     "sampling rate vs number of bins (max error <= 0.2, Z=2)",
                     scale);

  const std::uint64_t n = scale.default_n;
  const double f = 0.2;
  const int trials = scale.full ? 3 : 5;
  bench::Dataset dataset = bench::MakeZipfDataset(n, 2.0, LayoutKind::kRandom);

  const std::vector<std::uint64_t> bins =
      scale.full ? std::vector<std::uint64_t>{50, 100, 200, 300, 400, 500, 600}
                 : std::vector<std::uint64_t>{25, 50, 100, 150, 200, 250, 300};

  std::printf("N=%s, f=%.1f, Zipf Z=2, random layout\n\n",
              FormatWithThousands(n).c_str(), f);
  std::printf("%8s %16s %18s %16s %14s\n", "bins k", "blocks needed",
              "tuples sampled", "sampling rate", "rate/k (ppm)");

  for (std::uint64_t k : bins) {
    const std::uint64_t blocks =
        bench::BlocksForTargetError(dataset, f, k, trials, 21);
    const std::uint64_t tuples = blocks * dataset.table.tuples_per_page();
    const double rate = static_cast<double>(tuples) / static_cast<double>(n);
    std::printf("%8llu %16s %18s %15.2f%% %14.1f\n",
                static_cast<unsigned long long>(k),
                FormatWithThousands(blocks).c_str(),
                FormatWithThousands(tuples).c_str(), 100.0 * rate,
                1e6 * rate / static_cast<double>(k));
  }

  std::printf("\nexpected shape (paper): the sampling rate grows linearly "
              "with the number of bins —\nthe rate/k column should be "
              "roughly flat (Figure 6).\n");
  return 0;
}
