// PERF3: serving-path throughput — the compiled O(log k) estimator vs the
// reference bucket-walking loop, across bucket counts k in {32, 200, 1000,
// 10000} and three query shapes (point, narrow, wide). Two studies:
//
//   single_thread: ns/query for compiled vs reference on one thread. The
//     reference is O(buckets covered), so wide ranges at large k are where
//     the compiled path must win big (the acceptance bar is >= 5x at
//     k >= 1000).
//   batch: queries/second of the batch API EstimateRangeCounts at 1/2/4/8
//     worker threads, which must scale near-linearly to 4 threads since
//     queries are independent and the pool only shards them.
//   manager_serving: the DESIGN.md §11 robustness guard — ns/query of
//     StatisticsManager::EstimateRange (fault hooks compiled in, no
//     injector attached) vs the raw model path, measured twice: on a
//     healthy column and again while the column sits in stale-while-error
//     degradation (fault injector attached, a rebuild failed, breaker
//     bookkeeping populated). All three runs must produce bitwise-equal
//     estimate sums — a failed rebuild never republishes — and the
//     degraded/healthy ratio shows the fault machinery adds nothing to
//     the serving fast path.
//
// Every configuration first cross-checks compiled vs reference estimates
// on a query subsample (the documented ulp-level tolerance); a mismatch
// fails the whole bench with a nonzero exit, so the speedups are for the
// same answers. Emits BENCH_estimator_throughput.json (mirrored to
// stdout).

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/compiled_estimator.h"
#include "core/range_estimator.h"
#include "stats/statistics_manager.h"
#include "storage/fault_injection.h"

namespace {

using namespace equihist;

constexpr std::uint64_t kBucketCounts[] = {32, 200, 1000, 10000};
constexpr std::uint64_t kThreadCounts[] = {1, 2, 4, 8};
constexpr int kReps = 3;  // best-of, to shed scheduler noise

struct QueryClass {
  std::string name;
  std::vector<RangeQuery> queries;
};

struct SingleThreadRow {
  std::string query_class;
  double compiled_ns_per_query = 0.0;
  double reference_ns_per_query = 0.0;
  double speedup = 0.0;
  std::uint64_t reference_queries = 0;  // the O(k) loop runs a subset
  // Per-kernel ns/query through the batch entry point with the kernel
  // pinned (no pool): the vectorized serving core's breakdown.
  double scalar_kernel_ns_per_query = 0.0;
  double eytzinger_ns_per_query = 0.0;
  double simd_ns_per_query = 0.0;  // 0 when the CPU lacks AVX2
};

struct BatchRow {
  std::uint64_t threads = 0;
  double qps = 0.0;
  double speedup_vs_1 = 0.0;
};

struct KReport {
  std::uint64_t k = 0;
  std::uint64_t actual_buckets = 0;
  std::vector<SingleThreadRow> single_thread;
  std::vector<BatchRow> batch;
};

// Multi-column batching: a predicate list interleaving several columns
// answered by ONE StatisticsManager::EstimateBatch call vs the per-request
// EstimateRange loop it replaces.
struct MultiColumnRow {
  std::uint64_t batch_size = 0;
  double batch_ns_per_query = 0.0;
  double per_request_ns_per_query = 0.0;
  double speedup = 0.0;
};

// The §11 serving guard: raw model path vs manager fast path, healthy and
// then degraded (stale-while-error with a fault injector attached).
struct ManagerServingReport {
  std::uint64_t n = 0;
  std::uint64_t buckets = 0;
  std::uint64_t queries = 0;
  double direct_ns_per_query = 0.0;
  double healthy_ns_per_query = 0.0;
  double degraded_ns_per_query = 0.0;
  double healthy_overhead_vs_direct = 0.0;
  double degraded_vs_healthy = 0.0;
  bool estimates_identical = false;  // all three sums bitwise equal
  bool degradation_established = false;
};

double ElapsedNs(const std::chrono::steady_clock::time_point start) {
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::nano>(end - start).count();
}

// Generates `count` queries of a given width over the histogram's domain.
std::vector<RangeQuery> MakeQueries(Rng& rng, Value lo_fence, Value hi_fence,
                                    std::uint64_t width, std::size_t count) {
  std::vector<RangeQuery> queries;
  queries.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const Value lo = rng.NextInRange(lo_fence, hi_fence - 1);
    const Value hi =
        (hi_fence - lo > static_cast<Value>(width)) ? lo + static_cast<Value>(width)
                                                    : hi_fence;
    queries.push_back({lo, hi});
  }
  return queries;
}

// Times fn() best-of-kReps and returns nanoseconds; `sink` accumulates the
// estimates so the optimizer cannot discard the work.
template <typename Fn>
double BestNs(const Fn& fn, double* sink) {
  double best = -1.0;
  for (int rep = 0; rep < kReps; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    *sink += fn();
    const double ns = ElapsedNs(start);
    if (best < 0.0 || ns < best) best = ns;
  }
  return best;
}

// Verifies compiled and reference agree on a subsample, within the
// documented tolerance (ulps of the largest bucket count).
bool Verified(const Histogram& histogram, const CompiledEstimator& compiled,
              const std::vector<RangeQuery>& queries) {
  std::uint64_t max_count = 0;
  for (const std::uint64_t c : histogram.counts()) {
    max_count = std::max(max_count, c);
  }
  const double tolerance = 1e-10 * (1.0 + static_cast<double>(max_count));
  const std::size_t step = std::max<std::size_t>(queries.size() / 2000, 1);
  for (std::size_t i = 0; i < queries.size(); i += step) {
    const double fast = compiled.EstimateRangeCount(queries[i]);
    const double slow = EstimateRangeCount(histogram, queries[i]);
    if (std::abs(fast - slow) > tolerance) {
      std::cerr << "MISMATCH at query (" << queries[i].lo << ", "
                << queries[i].hi << "]: compiled=" << fast
                << " reference=" << slow << "\n";
      return false;
    }
  }
  return true;
}

std::string ToJson(const std::vector<KReport>& reports,
                   const std::vector<MultiColumnRow>& multi_column,
                   const ManagerServingReport& serving, std::uint64_t n,
                   std::size_t queries_per_class) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"bench\": \"estimator_throughput\",\n";
  os << "  \"n\": " << n << ",\n";
  os << "  \"queries_per_class\": " << queries_per_class << ",\n";
  os << "  \"host\": {\"hardware_concurrency\": " << bench::HostConcurrency()
     << "},\n";
  os << "  \"simd_available\": "
     << (CompiledEstimator::SimdAvailable() ? "true" : "false") << ",\n";
  os << "  \"batch_multi_column\": [\n";
  for (std::size_t i = 0; i < multi_column.size(); ++i) {
    const MultiColumnRow& row = multi_column[i];
    os << "    {\"batch_size\": " << row.batch_size
       << ", \"batch_ns_per_query\": " << row.batch_ns_per_query
       << ", \"per_request_ns_per_query\": " << row.per_request_ns_per_query
       << ", \"speedup\": " << row.speedup << "}"
       << (i + 1 < multi_column.size() ? "," : "") << "\n";
  }
  os << "  ],\n";
  os << "  \"manager_serving\": {\n";
  os << "    \"n\": " << serving.n << ", \"buckets\": " << serving.buckets
     << ", \"queries\": " << serving.queries << ",\n";
  os << "    \"direct_ns_per_query\": " << serving.direct_ns_per_query
     << ",\n";
  os << "    \"healthy_ns_per_query\": " << serving.healthy_ns_per_query
     << ",\n";
  os << "    \"degraded_ns_per_query\": " << serving.degraded_ns_per_query
     << ",\n";
  os << "    \"healthy_overhead_vs_direct\": "
     << serving.healthy_overhead_vs_direct << ",\n";
  os << "    \"degraded_vs_healthy\": " << serving.degraded_vs_healthy
     << ",\n";
  os << "    \"estimates_identical\": "
     << (serving.estimates_identical ? "true" : "false") << ",\n";
  os << "    \"degradation_established\": "
     << (serving.degradation_established ? "true" : "false") << "\n";
  os << "  },\n";
  os << "  \"configurations\": [\n";
  for (std::size_t r = 0; r < reports.size(); ++r) {
    const KReport& report = reports[r];
    os << "    {\"k\": " << report.k
       << ", \"buckets\": " << report.actual_buckets
       << ", \"single_thread\": [\n";
    for (std::size_t i = 0; i < report.single_thread.size(); ++i) {
      const SingleThreadRow& row = report.single_thread[i];
      os << "      {\"class\": \"" << row.query_class
         << "\", \"compiled_ns_per_query\": " << row.compiled_ns_per_query
         << ", \"reference_ns_per_query\": " << row.reference_ns_per_query
         << ", \"reference_queries\": " << row.reference_queries
         << ", \"speedup\": " << row.speedup << ",\n"
         << "       \"kernels\": {\"scalar_ns_per_query\": "
         << row.scalar_kernel_ns_per_query
         << ", \"eytzinger_ns_per_query\": " << row.eytzinger_ns_per_query
         << ", \"simd_ns_per_query\": " << row.simd_ns_per_query << "}}"
         << (i + 1 < report.single_thread.size() ? "," : "") << "\n";
    }
    os << "    ], \"batch\": [\n";
    for (std::size_t i = 0; i < report.batch.size(); ++i) {
      const BatchRow& row = report.batch[i];
      os << "      {\"threads\": " << row.threads << ", \"qps\": " << row.qps
         << ", \"speedup_vs_1\": " << row.speedup_vs_1 << "}"
         << (i + 1 < report.batch.size() ? "," : "") << "\n";
    }
    os << "    ]}" << (r + 1 < reports.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Scale scale = bench::GetScale(argc, argv);
  bench::PrintBanner("PERF3", "Compiled estimator serving throughput", scale);

  const std::size_t queries_per_class = scale.full ? 200000 : 50000;
  double sink = 0.0;
  bool all_verified = true;
  std::vector<KReport> reports;

  for (const std::uint64_t k : kBucketCounts) {
    // A skewed column (heavy values become duplicated-separator spikes)
    // with enough distinct values to give every bucket real width.
    const auto freqs = MakeZipf({.n = scale.default_n,
                                 .domain_size = std::max<std::uint64_t>(
                                     scale.default_n / 20, 4 * k),
                                 .skew = 1.0,
                                 .seed = 42});
    if (!freqs.ok()) {
      std::cerr << "dataset failed: " << freqs.status().ToString() << "\n";
      return 1;
    }
    const ValueSet data = ValueSet::FromFrequencies(*freqs);
    const auto histogram = BuildPerfectHistogram(data, k);
    if (!histogram.ok()) {
      std::cerr << "histogram failed: " << histogram.status().ToString()
                << "\n";
      return 1;
    }
    const CompiledEstimator compiled(*histogram);

    KReport report;
    report.k = k;
    report.actual_buckets = histogram->bucket_count();
    const Value lf = histogram->lower_fence();
    const Value uf = histogram->upper_fence();
    const auto domain =
        static_cast<std::uint64_t>(static_cast<double>(uf - lf));

    Rng rng(7 + k);
    std::vector<QueryClass> classes;
    classes.push_back(
        {"point", MakeQueries(rng, lf, uf, 1, queries_per_class)});
    classes.push_back({"narrow", MakeQueries(rng, lf, uf,
                                             std::max<std::uint64_t>(
                                                 domain / 1000, 2),
                                             queries_per_class)});
    classes.push_back(
        {"wide", MakeQueries(rng, lf, uf, domain / 2, queries_per_class)});

    std::vector<RangeQuery> mixed;
    mixed.reserve(3 * queries_per_class);
    for (const QueryClass& qc : classes) {
      all_verified &= Verified(*histogram, compiled, qc.queries);
      mixed.insert(mixed.end(), qc.queries.begin(), qc.queries.end());
    }

    // -- single-thread ns/query, compiled vs reference --------------------
    for (const QueryClass& qc : classes) {
      SingleThreadRow row;
      row.query_class = qc.name;
      const double compiled_ns = BestNs(
          [&]() {
            double acc = 0.0;
            for (const RangeQuery& q : qc.queries) {
              acc += compiled.EstimateRangeCount(q);
            }
            return acc;
          },
          &sink);
      row.compiled_ns_per_query =
          compiled_ns / static_cast<double>(qc.queries.size());
      // The reference loop is O(k) on wide ranges; cap its query count so
      // the bench stays fast at k=10000, and report per-query time.
      const std::size_t ref_count = std::min<std::size_t>(
          qc.queries.size(),
          std::max<std::size_t>(2000, 4000000 / std::max<std::uint64_t>(k, 1)));
      const double reference_ns = BestNs(
          [&]() {
            double acc = 0.0;
            for (std::size_t i = 0; i < ref_count; ++i) {
              acc += EstimateRangeCount(*histogram, qc.queries[i]);
            }
            return acc;
          },
          &sink);
      row.reference_queries = ref_count;
      row.reference_ns_per_query =
          reference_ns / static_cast<double>(ref_count);
      row.speedup = row.compiled_ns_per_query > 0.0
                        ? row.reference_ns_per_query / row.compiled_ns_per_query
                        : 0.0;
      // Per-kernel breakdown: the same queries through the batch entry
      // point with the kernel pinned. All three produce bitwise-identical
      // estimates (the differential test suite's guarantee); this records
      // what each layout/instruction set buys.
      std::vector<double> kernel_out(qc.queries.size());
      const double count = static_cast<double>(qc.queries.size());
      const auto kernel_ns = [&](EstimatorKernel kernel) {
        return BestNs(
                   [&]() {
                     compiled.EstimateRangeCounts(qc.queries, kernel_out,
                                                  nullptr, kernel);
                     return kernel_out[0];
                   },
                   &sink) /
               count;
      };
      row.scalar_kernel_ns_per_query = kernel_ns(EstimatorKernel::kScalar);
      row.eytzinger_ns_per_query = kernel_ns(EstimatorKernel::kEytzinger);
      row.simd_ns_per_query = CompiledEstimator::SimdAvailable()
                                  ? kernel_ns(EstimatorKernel::kSimd)
                                  : 0.0;
      report.single_thread.push_back(row);
      std::cerr << "  k=" << k << " " << row.query_class
                << ": compiled=" << row.compiled_ns_per_query
                << " ns/q, reference=" << row.reference_ns_per_query
                << " ns/q, speedup=" << row.speedup
                << "x | kernels scalar=" << row.scalar_kernel_ns_per_query
                << " eytzinger=" << row.eytzinger_ns_per_query
                << " simd=" << row.simd_ns_per_query << " ns/q\n";
    }

    // -- batch QPS scaling ------------------------------------------------
    std::vector<double> out(mixed.size());
    double base_qps = 0.0;
    for (const std::uint64_t threads : kThreadCounts) {
      std::unique_ptr<ThreadPool> pool;
      if (threads > 1) pool = std::make_unique<ThreadPool>(threads);
      const double ns = BestNs(
          [&]() {
            compiled.EstimateRangeCounts(mixed, out, pool.get());
            return out[0];
          },
          &sink);
      BatchRow row;
      row.threads = threads;
      row.qps = static_cast<double>(mixed.size()) / (ns * 1e-9);
      if (threads == 1) base_qps = row.qps;
      row.speedup_vs_1 = base_qps > 0.0 ? row.qps / base_qps : 0.0;
      report.batch.push_back(row);
      std::cerr << "  k=" << k << " batch threads=" << threads
                << ": " << row.qps / 1e6 << " Mq/s (x" << row.speedup_vs_1
                << ")\n";
    }
    reports.push_back(std::move(report));
  }

  // -- multi-column batch estimation ----------------------------------------
  //
  // A planner estimating a predicate list touches several columns at once.
  // EstimateBatch groups the interleaved requests per column, resolves each
  // serving slot once, and runs every group through the vectorized batch
  // kernel — vs the per-request loop that re-enters the manager (slot
  // lookup, staleness check) for every single predicate.
  std::vector<MultiColumnRow> multi_column;
  {
    const std::uint64_t mc_n = std::min<std::uint64_t>(scale.default_n,
                                                       200000);
    bench::Dataset dataset =
        bench::MakeZipfDataset(mc_n, 1.0, LayoutKind::kRandom, 64, 1337);
    StatisticsManager::Options options;
    options.buckets = scale.k;
    options.seed = 23;
    options.threads = 1;
    options.column_backends["col2"] = HistogramBackendId::kEquiWidth;
    StatisticsManager manager(options);
    const std::vector<std::string> columns = {"col0", "col1", "col2"};
    // Warm every column so both timings measure pure serving.
    for (const std::string& column : columns) {
      const auto built = manager.GetOrBuildShared(column, dataset.table);
      if (!built.ok()) {
        std::cerr << "multi-column build failed: "
                  << built.status().ToString() << "\n";
        return 1;
      }
    }
    const Value lf = dataset.truth.min();
    const Value uf = dataset.truth.max();
    const auto domain =
        static_cast<std::uint64_t>(static_cast<double>(uf - lf));
    Rng rng(4242);
    for (const std::uint64_t batch_size : {8u, 64u, 1024u}) {
      std::vector<BatchEstimateRequest> requests;
      requests.reserve(batch_size);
      const auto widths = std::vector<std::uint64_t>{
          1, std::max<std::uint64_t>(domain / 1000, 2), domain / 2};
      for (std::uint64_t i = 0; i < batch_size; ++i) {
        const Value lo = rng.NextInRange(lf, uf - 1);
        const std::uint64_t width = widths[i % widths.size()];
        const Value hi = (uf - lo > static_cast<Value>(width))
                             ? lo + static_cast<Value>(width)
                             : uf;
        requests.push_back({columns[i % columns.size()], {lo, hi}});
      }
      // Amortize timer resolution: many calls per rep for small batches.
      const std::uint64_t iters =
          std::max<std::uint64_t>(1, (scale.smoke ? 2000 : 20000) / batch_size);
      const double total =
          static_cast<double>(iters) * static_cast<double>(batch_size);
      BatchEstimateResult result;
      const double batch_ns = BestNs(
          [&]() {
            double acc = 0.0;
            for (std::uint64_t it = 0; it < iters; ++it) {
              if (!manager.EstimateBatch(dataset.table, requests, &result)
                       .ok()) {
                std::cerr << "EstimateBatch failed\n";
                std::exit(1);
              }
              acc += result.estimates[0];
            }
            return acc;
          },
          &sink);
      const double per_request_ns = BestNs(
          [&]() {
            double acc = 0.0;
            for (std::uint64_t it = 0; it < iters; ++it) {
              for (const BatchEstimateRequest& request : requests) {
                const auto est = manager.EstimateRange(
                    request.column, dataset.table, request.query);
                acc += est.ok() ? *est : 0.0;
              }
            }
            return acc;
          },
          &sink);
      MultiColumnRow row;
      row.batch_size = batch_size;
      row.batch_ns_per_query = batch_ns / total;
      row.per_request_ns_per_query = per_request_ns / total;
      row.speedup = row.batch_ns_per_query > 0.0
                        ? row.per_request_ns_per_query / row.batch_ns_per_query
                        : 0.0;
      multi_column.push_back(row);
      std::cerr << "  multi-column batch_size=" << batch_size
                << ": batch=" << row.batch_ns_per_query
                << " ns/q, per-request=" << row.per_request_ns_per_query
                << " ns/q, speedup=" << row.speedup << "x\n";
    }
  }

  // -- manager serving overhead (the DESIGN.md §11 robustness guard) -------
  //
  // The fault-tolerance machinery (retry, health bookkeeping, breaker,
  // fallback) lives entirely in the build/slow paths; serving must cost
  // the same with it compiled in. Three timings over one query mix:
  //   direct:   ColumnStatistics::EstimateRangeCount on the snapshot — the
  //             raw model/compiled path with no manager in front.
  //   healthy:  StatisticsManager::EstimateRange on a fresh column (fault
  //             hooks compiled but no injector attached).
  //   degraded: the same calls while the column is stale-while-error — a
  //             fault injector is attached and a rebuild has failed, so
  //             the degraded-serving state is fully populated.
  // All three accumulate the same sum bitwise (same published snapshot,
  // same iteration order); a mismatch — or a degraded run that issues even
  // one storage read — fails the bench.
  ManagerServingReport serving;
  {
    const std::uint64_t mgr_n = std::min<std::uint64_t>(scale.default_n,
                                                        200000);
    bench::Dataset dataset =
        bench::MakeZipfDataset(mgr_n, 1.0, LayoutKind::kRandom, 64, 2026);
    StatisticsManager::Options options;
    options.buckets = scale.k;
    options.seed = 17;
    options.threads = 1;
    StatisticsManager manager(options);
    const std::string column = "bench.col";
    const auto snapshot = manager.GetOrBuildShared(column, dataset.table);
    if (!snapshot.ok()) {
      std::cerr << "manager build failed: " << snapshot.status().ToString()
                << "\n";
      return 1;
    }
    const ColumnStatistics& stats = **snapshot;
    const Value lf = stats.histogram().lower_fence();
    const Value uf = stats.histogram().upper_fence();
    const auto domain =
        static_cast<std::uint64_t>(static_cast<double>(uf - lf));
    Rng rng(2026);
    std::vector<RangeQuery> queries = MakeQueries(rng, lf, uf, 1,
                                                  queries_per_class / 3);
    {
      auto narrow = MakeQueries(rng, lf, uf,
                                std::max<std::uint64_t>(domain / 1000, 2),
                                queries_per_class / 3);
      auto wide = MakeQueries(rng, lf, uf, domain / 2, queries_per_class / 3);
      queries.insert(queries.end(), narrow.begin(), narrow.end());
      queries.insert(queries.end(), wide.begin(), wide.end());
    }
    serving.n = mgr_n;
    serving.buckets = stats.histogram().bucket_count();
    serving.queries = queries.size();

    const auto direct_pass = [&]() {
      double acc = 0.0;
      for (const RangeQuery& q : queries) acc += stats.EstimateRangeCount(q);
      return acc;
    };
    const auto manager_pass = [&]() {
      double acc = 0.0;
      for (const RangeQuery& q : queries) {
        const auto est = manager.EstimateRange(column, dataset.table, q);
        acc += est.ok() ? *est : 0.0;
      }
      return acc;
    };

    const double direct_sum = direct_pass();
    const double healthy_sum = manager_pass();
    const double count = static_cast<double>(queries.size());
    serving.direct_ns_per_query = BestNs(direct_pass, &sink) / count;
    serving.healthy_ns_per_query = BestNs(manager_pass, &sink) / count;

    // Push the column into stale-while-error: every page read now fails,
    // so the forced rebuild is absorbed and the old snapshot keeps
    // serving with the breaker/health bookkeeping populated. The injector
    // stays attached during the timing — the serving path must not touch
    // storage at all.
    manager.RecordModifications(column, mgr_n);
    FaultSpec spec;
    spec.lost_probability = 1.0;
    FaultInjector injector(spec);
    dataset.table.set_fault_injector(&injector);
    const auto refreshed = manager.EnsureFresh(column, dataset.table);
    const ColumnHealthReport health = manager.Health(column);
    serving.degradation_established = refreshed.ok() &&
                                      health.health == ColumnHealth::kStale &&
                                      health.total_build_failures > 0;
    const std::uint64_t reads_before =
        injector.lost_injected() + injector.transient_injected();
    const double degraded_sum = manager_pass();
    serving.degraded_ns_per_query = BestNs(manager_pass, &sink) / count;
    const std::uint64_t reads_after =
        injector.lost_injected() + injector.transient_injected();
    dataset.table.set_fault_injector(nullptr);

    serving.estimates_identical =
        direct_sum == healthy_sum && healthy_sum == degraded_sum;
    serving.healthy_overhead_vs_direct =
        serving.direct_ns_per_query > 0.0
            ? serving.healthy_ns_per_query / serving.direct_ns_per_query
            : 0.0;
    serving.degraded_vs_healthy =
        serving.healthy_ns_per_query > 0.0
            ? serving.degraded_ns_per_query / serving.healthy_ns_per_query
            : 0.0;
    if (!serving.estimates_identical) {
      std::cerr << "ERROR: manager serving sums diverge: direct="
                << direct_sum << " healthy=" << healthy_sum
                << " degraded=" << degraded_sum << "\n";
      all_verified = false;
    }
    if (!serving.degradation_established) {
      std::cerr << "ERROR: stale-while-error state was not established\n";
      all_verified = false;
    }
    if (reads_after != reads_before) {
      std::cerr << "ERROR: degraded serving issued "
                << (reads_after - reads_before) << " storage reads\n";
      all_verified = false;
    }
    std::cerr << "  manager serving: direct=" << serving.direct_ns_per_query
              << " ns/q, healthy=" << serving.healthy_ns_per_query
              << " ns/q (x" << serving.healthy_overhead_vs_direct
              << "), degraded=" << serving.degraded_ns_per_query << " ns/q (x"
              << serving.degraded_vs_healthy << " vs healthy)\n";
  }

  const std::string json = ToJson(reports, multi_column, serving,
                                  scale.default_n, queries_per_class);
  std::cout << json;
  bench::WriteBenchJson("BENCH_estimator_throughput.json", json);
  if (sink == 42.0) std::cerr << " ";  // keep the checksum alive
  std::cerr << (all_verified
                    ? "compiled and reference estimates agree on all samples\n"
                    : "ERROR: compiled/reference estimate mismatch\n");
  return all_verified ? 0 : 1;
}
