#ifndef EQUIHIST_BENCH_BENCH_COMMON_H_
#define EQUIHIST_BENCH_BENCH_COMMON_H_

// Shared scaffolding for the experiment harnesses that regenerate the
// paper's tables and figures. Each bench binary prints the same rows or
// series the paper reports; EXPERIMENTS.md records paper-vs-measured.
//
// Scale: the paper ran with N = 5..20 million rows and k = 600 buckets on
// SQL Server. By default the harnesses run a reduced "fast" scale so the
// whole suite finishes in minutes on one core; set EQUIHIST_FULL_SCALE=1
// to run at the paper's numbers.

#include <cstdint>
#include <string>
#include <vector>

#include "equihist/equihist.h"

namespace equihist::bench {

struct Scale {
  bool full = false;
  // Smoke mode (--smoke flag or EQUIHIST_SMOKE=1): tiny n, fixed seeds —
  // finishes in seconds, exercises every code path. CI runs the harnesses
  // this way so a bench that rots fails the build, not the next
  // experiment run.
  bool smoke = false;
  // The paper's default table size (most figures): 10M rows full, 1M fast.
  std::uint64_t default_n = 1000000;
  // Histogram buckets: 600 full (one SQL Server page of integer steps),
  // 100 fast.
  std::uint64_t k = 100;
  // Figure 3/4 N sweep: {5,10,15,20}M full, {0.5,1,1.5,2}M fast.
  std::vector<std::uint64_t> n_sweep;
  // Zipf domain size used when generating a column of n tuples.
  std::uint64_t DomainFor(std::uint64_t n) const { return n / 100; }
};

// Resolves the run scale: EQUIHIST_FULL_SCALE=1 selects the paper's sizes,
// a --smoke argument or EQUIHIST_SMOKE=1 selects the tiny CI scale (smoke
// wins when both are set). Pass main's argc/argv to honour the flag;
// GetScale() alone still reads the environment.
Scale GetScale(int argc = 0, char** argv = nullptr);

// The host's core count for bench JSON. Normalizes the "not computable"
// zero from std::thread::hardware_concurrency() to 1, and prints a loud
// one-time warning on single-core hosts, where parallel speedups and QPS
// scaling sections measure scheduling overhead rather than parallelism.
unsigned HostConcurrency();

// Writes a bench's JSON artifact to `path`. Enforces the reporting
// contract every throughput bench must honour: the JSON records the
// host's hardware_concurrency (the perf-regression CI job and
// EXPERIMENTS.md key off it) — a bench that omits it aborts here rather
// than publishing an uninterpretable baseline.
void WriteBenchJson(const std::string& path, const std::string& json);

// Prints the standard experiment banner (experiment id, paper figure,
// scale note).
void PrintBanner(const std::string& experiment_id, const std::string& title,
                 const Scale& scale);

// Builds a Zipf(Z) column of n tuples and the matching paged table.
struct Dataset {
  FrequencyVector frequencies;
  ValueSet truth;
  Table table;
};
Dataset MakeZipfDataset(std::uint64_t n, double skew, LayoutKind layout,
                        std::uint32_t record_size_bytes = 64,
                        std::uint64_t seed = 42,
                        double clustered_fraction = 0.2);

// Builds the paper's Unif/Dup dataset: `distinct` values each occurring
// n / distinct times.
Dataset MakeUnifDupDataset(std::uint64_t n, std::uint64_t distinct,
                           LayoutKind layout,
                           std::uint32_t record_size_bytes = 64,
                           std::uint64_t seed = 42);

// Measures the histogram error obtained from sampling `blocks` random
// pages of `dataset.table` (without replacement), averaged over `trials`
// seeds. Error is the fractional max error of the histogram against the
// population (FractionalErrorVsPopulation) — the paper's Section 5
// duplicate-aware generalization of the max error metric, the same family
// its prototype computed for cross-validation.
double MeasuredErrorAtBlocks(const Dataset& dataset, std::uint64_t blocks,
                             std::uint64_t k, int trials, std::uint64_t seed0);

// Finds the smallest number of sampled blocks whose measured error drops
// below `target_error`, by doubling then bisecting. Returns the block
// count (capped at the table's page count).
std::uint64_t BlocksForTargetError(const Dataset& dataset, double target_error,
                                   std::uint64_t k, int trials,
                                   std::uint64_t seed0);

}  // namespace equihist::bench

#endif  // EQUIHIST_BENCH_BENCH_COMMON_H_
