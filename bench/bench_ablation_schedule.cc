// ABL1 / ABL2: ablations of the CVB design choices the paper discusses but
// does not plot.
//
//   ABL1 (Section 4.2 analysis vs Section 7.1 experiments): the stepping
//   schedule — doubling (analyzed: <= 2x oversampling) vs linear 5*sqrt(n)
//   increments (experimental: cheaper merges, finer stopping granularity)
//   vs a geometric 1.5x middle ground.
//
//   ABL2 (the "twists" of Section 4.2): cross-validating with every tuple
//   of the fresh blocks vs one random tuple per block; and the fractional
//   (Definition 4) vs raw relative-deviation (Definition 3) stopping
//   statistics.

#include <cstdio>

#include "bench_common.h"

using namespace equihist;

namespace {

void RunRow(const char* label, const bench::Dataset& dataset,
            const CvbOptions& options) {
  const auto result = RunCvb(dataset.table, options);
  if (!result.ok()) {
    std::fprintf(stderr, "CVB failed: %s\n",
                 result.status().ToString().c_str());
    return;
  }
  const double achieved =
      FractionalErrorVsPopulation(result->histogram, dataset.truth);
  std::printf("%-34s %6llu %12s %12.2f%% %10.4f %10s\n", label,
              static_cast<unsigned long long>(result->iterations),
              FormatWithThousands(result->blocks_sampled).c_str(),
              100.0 * result->sampling_fraction, achieved,
              result->converged ? "yes"
                                : (result->exhausted_table ? "exhausted"
                                                           : "cap"));
}

void Header() {
  std::printf("%-34s %6s %12s %13s %10s %10s\n", "configuration", "iters",
              "blocks", "rate", "true err", "converged");
}

}  // namespace

int main() {
  const bench::Scale scale = bench::GetScale();
  bench::PrintBanner("ABL1/ABL2", "CVB design-choice ablations", scale);

  const std::uint64_t n = scale.default_n;
  const double f = 0.15;

  for (const auto& [layout, layout_name] :
       {std::pair{LayoutKind::kRandom, "random layout"},
        std::pair{LayoutKind::kPartiallyClustered,
                  "partially-clustered layout"}}) {
    bench::Dataset dataset =
        bench::MakeZipfDataset(n, 2.0, layout, 64, 42, 0.2);
    std::printf("--- %s (Z=2, N=%s, k=%llu, f=%.2f) ---\n", layout_name,
                FormatWithThousands(n).c_str(),
                static_cast<unsigned long long>(scale.k), f);

    std::printf("\nABL1: stepping schedule\n");
    Header();
    for (const auto& [kind, name] :
         {std::pair{ScheduleKind::kDoubling, "doubling (paper Sec 4.2)"},
          std::pair{ScheduleKind::kLinear, "linear 5*sqrt(n) (paper Sec 7.1)"},
          std::pair{ScheduleKind::kGeometric, "geometric 1.5x"}}) {
      CvbOptions options;
      options.k = scale.k;
      options.f = f;
      options.seed = 7;
      options.schedule.kind = kind;
      RunRow(name, dataset, options);
    }
    {
      CvbOptions options;
      options.k = scale.k;
      options.f = f;
      options.seed = 7;
      options.error_adaptive_stepping = true;
      RunRow("error-adaptive (Sec 4.2 twist)", dataset, options);
    }

    std::printf("\nABL2: validation style and metric (doubling schedule)\n");
    Header();
    {
      CvbOptions options;
      options.k = scale.k;
      options.f = f;
      options.seed = 7;
      RunRow("all tuples + fractional (default)", dataset, options);
      options.style = CvbValidationStyle::kOneTuplePerBlock;
      RunRow("one tuple per block + fractional", dataset, options);
      options.style = CvbValidationStyle::kAllTuples;
      options.metric = CvbValidationMetric::kClaimedDeviation;
      RunRow("all tuples + claimed deviation", dataset, options);
      options.metric = CvbValidationMetric::kRelativeDeviation;
      RunRow("all tuples + relative dev (Def 3)", dataset, options);
    }

    std::printf("\nABL1 extra: Theorem 4 initial budget instead of "
                "5*sqrt(n)\n");
    Header();
    {
      CvbOptions options;
      options.k = scale.k;
      options.f = f;
      options.seed = 7;
      options.initial_budget = CvbInitialBudget::kTheorem4;
      RunRow("theorem-4 initial budget", dataset, options);
    }
    std::printf("\n");
  }

  std::printf(
      "reading: doubling converges in few iterations with bounded "
      "oversampling; linear\nsteps stop at a finer-grained (often smaller) "
      "sample at the cost of more rounds;\none-tuple-per-block validation "
      "is cheaper but noisier, so it can over- or\nunder-sample; the "
      "Theorem 4 budget is safe but can dwarf the adaptive "
      "equilibrium.\n");
  return 0;
}
