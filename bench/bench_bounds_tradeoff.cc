// EX3 / EX4: regenerates the Section 3 trade-off tables — Example 3's
// multi-functional use of Corollary 1 (solve for r, k or f) and Example 4's
// comparison with the Gibbons-Matias-Poosala Theorem 6 bound.

#include <cstdio>

#include "bench_common.h"

using namespace equihist;

namespace {

void Example3SampleSize() {
  std::printf("--- Example 3: determining sample size (gamma = 0.01) ---\n");
  std::printf("%-22s %12s %12s %12s\n", "setting", "n=20M", "n=100M", "n=1G");
  struct Row {
    std::uint64_t k;
    double f;
    const char* paper;
  };
  for (const Row& row : {Row{500, 0.2, "~1M"}, Row{100, 0.1, "~800K"}}) {
    std::printf("k=%-4llu f=%.1f (paper %s)",
                static_cast<unsigned long long>(row.k), row.f, row.paper);
    for (std::uint64_t n : {std::uint64_t{20000000}, std::uint64_t{100000000},
                            std::uint64_t{1000000000}}) {
      const auto r = DeviationSampleSize(n, row.k, row.f, 0.01);
      std::printf(" %12s", FormatCount(static_cast<double>(*r)).c_str());
    }
    std::printf("\n");
  }
  std::printf("\n");
}

void Example3HistogramSizeAndError() {
  std::printf("--- Example 3: histogram size and error ---\n");
  const auto kmax = MaxBucketsForSampleSize(20000000, 1000000, 0.25, 0.01);
  std::printf("max k for (n=20M, r=1M, f=0.25): measured %llu, paper ~800\n",
              static_cast<unsigned long long>(*kmax));
  const auto f = DeviationErrorForSampleSize(25000000, 200, 800000, 0.01);
  std::printf("error f for (n=25M, r=800K, k=200): measured %.1f%%, paper "
              "14%%\n\n",
              *f * 100.0);
}

void Example4GmpComparison() {
  std::printf("--- Example 4: ours vs Gibbons-Matias-Poosala Theorem 6 ---\n");
  std::printf("%-8s | %-38s | %-20s\n", "k",
              "GMP Thm 6 (variance error only)", "ours (max error)");
  std::printf("%-8s | %8s %10s %17s | %6s %12s\n", "", "f", "r",
              "needs n >=", "f", "r");
  for (std::uint64_t k : {std::uint64_t{100}, std::uint64_t{500},
                          std::uint64_t{1000}, std::uint64_t{10000}}) {
    const auto gmp = GmpTheorem6(1ULL << 40, k, 4.0);
    if (!gmp.ok()) continue;
    const auto ours = DeviationSampleSize(1ULL << 40, k, 0.1, gmp->gamma);
    std::printf("%-8llu | %8.3f %10s %17s | %6.3f %12s\n",
                static_cast<unsigned long long>(k), gmp->f,
                FormatCount(static_cast<double>(gmp->r)).c_str(),
                FormatCount(static_cast<double>(gmp->min_n_theorem)).c_str(),
                0.1, FormatCount(static_cast<double>(*ours)).c_str());
  }
  std::printf("\npaper's headline (Example 4 item 5): at k=500, GMP cannot "
              "guarantee f < 0.43 and\nExample 4 reads its applicability as "
              "n >= r^3 (~460 * 10^12 rows); our bound gives\nany f at "
              "moderate r for all n. GMP's f floor across practical k:\n");
  double worst = 1.0;
  for (std::uint64_t k = 3; k <= 100000; k = k * 3 / 2 + 1) {
    const auto gmp = GmpTheorem6(1ULL << 50, k, 4.0);
    if (gmp.ok() && gmp->f < worst) worst = gmp->f;
  }
  std::printf("  min f over k in [3, 100000]: %.3f (paper: f < 0.35 "
              "unreachable in practice)\n\n",
              worst);
}

void SingleQueryVsAllQueries() {
  std::printf("--- single-query adequacy vs the all-queries guarantee ---\n");
  std::printf("(Piatetsky-Shapiro & Connell regime vs Theorem 4; s = n/k, "
              "delta = f*n/k, gamma = 0.01)\n");
  std::printf("%-10s %6s %16s %16s %10s\n", "n", "k", "one query",
              "all queries", "premium");
  for (const auto& [n, k] :
       {std::pair<std::uint64_t, std::uint64_t>{10000000, 100},
        std::pair<std::uint64_t, std::uint64_t>{10000000, 600},
        std::pair<std::uint64_t, std::uint64_t>{1000000000, 600}}) {
    const double s = static_cast<double>(n) / static_cast<double>(k);
    const auto single = SingleQuerySampleSize(n, s, 0.1 * s, 0.01);
    const auto all = DeviationSampleSize(n, k, 0.1, 0.01);
    if (!single.ok() || !all.ok()) continue;
    std::printf("%-10s %6llu %16s %16s %9.1fx\n",
                FormatCount(static_cast<double>(n)).c_str(),
                static_cast<unsigned long long>(k),
                FormatCount(static_cast<double>(*single)).c_str(),
                FormatCount(static_cast<double>(*all)).c_str(),
                static_cast<double>(*all) / static_cast<double>(*single));
  }
  std::printf("\nreading: certifying every query at once costs only a "
              "logarithmic premium over\ncertifying one — the paper's "
              "qualitative jump over [27] is nearly free.\n\n");
}

void Theorem5Separation() {
  std::printf("--- Theorem 5: delta-separation needs more than "
              "delta-deviation ---\n");
  const std::uint64_t n = 10000000;
  std::printf("%-10s %16s %16s %8s\n", "k (f=0.2)", "r (Thm 4)", "r (Thm 5)",
              "ratio");
  for (std::uint64_t k : {std::uint64_t{100}, std::uint64_t{300},
                          std::uint64_t{600}}) {
    const double delta = 0.2 * static_cast<double>(n) / static_cast<double>(k);
    const auto dev = DeviationSampleSizeAbsolute(n, k, delta, 0.01);
    const auto sep = SeparationSampleSize(n, k, delta, 0.01);
    std::printf("%-10llu %16s %16s %7.1fx\n",
                static_cast<unsigned long long>(k),
                FormatCount(static_cast<double>(*dev)).c_str(),
                FormatCount(static_cast<double>(*sep)).c_str(),
                static_cast<double>(*sep) / static_cast<double>(*dev));
  }
  std::printf("\n");
}

}  // namespace

int main() {
  bench::PrintBanner("EX3/EX4",
                     "Section 3 sampling trade-offs and prior-work comparison",
                     bench::GetScale());
  Example3SampleSize();
  Example3HistogramSizeAndError();
  Example4GmpComparison();
  SingleQueryVsAllQueries();
  Theorem5Separation();
  return 0;
}
