// Figures 9-12: distinct-value estimation vs sampling rate.
//
//   Figure 9 : Z=2       — numDVReal vs numDVSamp vs numDVEst
//   Figure 10: Unif/Dup  — same columns (every value occurs exactly 100x)
//   Figure 11: Z=2       — estimation error vs sampling rate
//   Figure 12: Unif/Dup  — same
//
// numDVEst is the paper's estimator e = sqrt(n/r) f1+ + sum_{j>=2} f_j.
// Extra columns show the classical estimators for context (not in the
// paper's figures, but in its Section 6 discussion).

#include <cstdio>
#include <vector>

#include "bench_common.h"

using namespace equihist;

namespace {

void RunSeries(const char* fig_pair, const char* dist_name,
               const bench::Dataset& dataset) {
  const std::uint64_t n = dataset.truth.size();
  const std::uint64_t d = dataset.truth.DistinctCount();
  std::printf("--- %s: %s (numDVReal = %s) ---\n", fig_pair, dist_name,
              FormatWithThousands(d).c_str());
  std::printf("%8s | %10s %10s %10s %10s | %10s %10s\n", "rate", "numDVSamp",
              "numDVEst", "chao-lee", "shlosser", "ratio err", "|rel err|");

  for (double rate : {0.01, 0.02, 0.05, 0.10, 0.20}) {
    const auto blocks = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               rate * static_cast<double>(dataset.table.page_count())));
    Rng rng(31 + static_cast<std::uint64_t>(rate * 1000));
    auto sample =
        SampleBlocksWithoutReplacement(dataset.table, blocks, rng, nullptr);
    if (!sample.ok()) {
      std::fprintf(stderr, "%s\n", sample.status().ToString().c_str());
      return;
    }
    const auto profile = FrequencyProfile::FromUnsorted(std::move(*sample));
    const auto paper = PaperEstimator(profile, n);
    const auto chao_lee = ChaoLeeEstimator(profile, n);
    const auto shlosser = ShlosserEstimator(profile, n);
    const auto ratio = RatioError(*paper, d);
    const auto rel = AbsRelError(*paper, d, n);
    std::printf("%7.0f%% | %10s %10.0f %10.0f %10.0f | %10.2f %10.4f\n",
                rate * 100.0,
                FormatWithThousands(profile.distinct_in_sample()).c_str(),
                *paper, *chao_lee, *shlosser, *ratio, *rel);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  const bench::Scale scale = bench::GetScale();
  bench::PrintBanner("FIG9-12",
                     "distinct-value estimation vs sampling rate "
                     "(Z=2 and Unif/Dup)",
                     scale);

  const std::uint64_t n = scale.default_n;

  bench::Dataset zipf = bench::MakeZipfDataset(n, 2.0, LayoutKind::kRandom);
  RunSeries("FIG9/FIG11", "Zipf Z=2", zipf);

  // Paper: 100,000 distinct values each occurring 100 times at N = 10M;
  // scaled down proportionally for the fast configuration.
  const std::uint64_t distinct = n / 100;
  bench::Dataset unif_dup =
      bench::MakeUnifDupDataset(n, distinct, LayoutKind::kRandom);
  RunSeries("FIG10/FIG12", "Unif/Dup (each value x100)", unif_dup);

  std::printf(
      "expected shape (paper): for Zipf the estimate tracks numDVReal from "
      "small rates\n(few, frequent values are all seen early); for Unif/Dup "
      "the sample count and the\nestimate approach d only as the rate "
      "grows, but |rel err| = |d - e|/n stays small\nat every rate — the "
      "paper's argument that rel-error is the reliable metric\n"
      "(Figures 9-12).\n");
  return 0;
}
