// Figures 3 and 4: vary the number of records N (Z=2, max error <= 0.1).
//
//   Figure 3: required sampling *rate* vs N  — expected to fall ~log(n)/n.
//   Figure 4: number of disk blocks sampled vs N — expected ~constant.
//
// "Required sampling" is measured directly: the smallest number of sampled
// blocks whose histogram meets the error target against ground truth
// (bisection over block counts, averaged over seeds). A second table shows
// what the adaptive CVB algorithm actually spends at the same target.

#include <cstdio>

#include "bench_common.h"

using namespace equihist;

int main() {
  const bench::Scale scale = bench::GetScale();
  bench::PrintBanner(
      "FIG3/FIG4",
      "sampling rate and blocks sampled vs N (max error <= 0.1, Z=2)", scale);

  const double f = 0.1;
  const int trials = scale.full ? 3 : 5;
  std::printf("k=%llu, f=%.1f, Zipf Z=2, random layout, 8KB pages / 64B "
              "records\n\n",
              static_cast<unsigned long long>(scale.k), f);
  std::printf("--- required sampling (measured against ground truth) ---\n");
  std::printf("%12s %16s %18s %18s\n", "N", "blocks (Fig 4)",
              "tuples sampled", "rate (Fig 3)");

  for (std::uint64_t n : scale.n_sweep) {
    bench::Dataset dataset =
        bench::MakeZipfDataset(n, 2.0, LayoutKind::kRandom);
    const std::uint64_t blocks =
        bench::BlocksForTargetError(dataset, f, scale.k, trials, 11);
    const std::uint64_t tuples = blocks * dataset.table.tuples_per_page();
    std::printf("%12s %16s %18s %17.2f%%\n", FormatWithThousands(n).c_str(),
                FormatWithThousands(blocks).c_str(),
                FormatWithThousands(tuples).c_str(),
                100.0 * static_cast<double>(tuples) / static_cast<double>(n));
  }

  std::printf("\n--- what adaptive CVB spends at the same target ---\n");
  std::printf("%12s %16s %18s %12s\n", "N", "blocks", "rate", "converged");
  for (std::uint64_t n : scale.n_sweep) {
    bench::Dataset dataset =
        bench::MakeZipfDataset(n, 2.0, LayoutKind::kRandom);
    CvbOptions options;
    options.k = scale.k;
    options.f = f;
    options.seed = 1234;
    const auto result = RunCvb(dataset.table, options);
    if (!result.ok()) {
      std::fprintf(stderr, "CVB failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("%12s %16s %17.2f%% %12s\n", FormatWithThousands(n).c_str(),
                FormatWithThousands(result->blocks_sampled).c_str(),
                100.0 * result->sampling_fraction,
                result->converged ? "yes" : "exhausted");
  }

  std::printf(
      "\nexpected shape (paper): the required rate falls roughly like "
      "log(n)/n as N grows\n(Figure 3) while the required blocks stay "
      "nearly constant (Figure 4) — the sample\nsize needed is essentially "
      "independent of N (Section 3.3). CVB tracks the required\namount "
      "within its stepping granularity (at most ~2x with doubling).\n");
  return 0;
}
